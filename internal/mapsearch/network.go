package mapsearch

import (
	"context"
	"math"

	"unico/internal/perfprof"
	"unico/internal/ppa"
	"unico/internal/telemetry"
)

// stepCount is the global layer-step counter (one increment per
// LayerSearcher.Step across every concurrent search).
var stepCount = telemetry.MapSearchSteps()

// PenaltyLoss is the finite loss recorded while a network has no feasible
// mapping yet (or a hardware configuration admits none at all). Finite so
// that AUC and sorting arithmetic stay well-defined; any real EDP is many
// orders of magnitude below it.
const PenaltyLoss = 1e100

// Feasible returns the suffix of the history starting at the first point
// with a sub-penalty loss. AUC and robustness computations use this view so
// an initial infeasible plateau does not distort them.
func Feasible(h ppa.History) ppa.History {
	for i, p := range h {
		if p.Loss < PenaltyLoss {
			return h[i:]
		}
	}
	return nil
}

// Searcher is a resumable network-level software-mapping search: the object
// the successive-halving scheduler hands budget to, one installment at a
// time.
type Searcher interface {
	// Advance spends budget more PPA evaluations.
	Advance(budget int)
	// History returns the best-so-far trajectory (one point per evaluation
	// spent), monotone non-increasing in loss.
	History() ppa.History
	// Spent returns the total evaluations spent.
	Spent() int
	// Best returns the aggregate metrics of the best mappings found, and
	// whether every layer has a feasible mapping.
	Best() (ppa.Metrics, bool)
	// RawHistory returns the trajectory of raw evaluation samples (the
	// aggregate of each layer's most recent candidate per unit) — the
	// fluctuating loss curve of paper Fig. 5a that the robustness metric R
	// observes. Unlike History it is not monotone.
	RawHistory() ppa.History
}

// ContextAdvancer is an optional Searcher extension for cancelable budget
// installments: AdvanceContext stops early (leaving the searcher resumable,
// with whatever budget it actually spent recorded) once ctx is canceled.
// Schedulers use it when available so a shutdown signal interrupts long
// advances promptly; with an un-canceled ctx it must behave exactly like
// Advance.
type ContextAdvancer interface {
	AdvanceContext(ctx context.Context, budget int)
}

// AdvanceSearcher advances a searcher through its ContextAdvancer fast path
// when it has one, falling back to the plain (non-cancelable) Advance.
func AdvanceSearcher(ctx context.Context, s Searcher, budget int) {
	_, span := perfprof.Start(ctx, "mapsearch.advance")
	defer span.End()
	if ca, ok := s.(ContextAdvancer); ok {
		ca.AdvanceContext(ctx, budget)
		return
	}
	s.Advance(budget)
}

// NetworkSearcher drives one LayerSearcher per distinct layer shape and
// exposes the aggregate network metrics.
//
// One budget unit is one *network mapping evaluation*: len(layers) layer
// steps, so a budget of b explores b schedule candidates per layer — the
// budget convention of the paper (b_max = 300 candidate schedules). Within a
// unit, steps are distributed across layers proportionally to their share of
// the network's total MACs (a large layer deserves more schedule tuning) via
// a deficit-round-robin credit scheme; the very first unit steps every layer
// exactly once so the seed schedules establish feasibility immediately.
type NetworkSearcher struct {
	layers  []LayerSearcher
	repeats []int
	weights []float64
	credits []float64
	area    float64 // hardware area, constant across mappings
	spent   int
	hist    ppa.History
	rawHist ppa.History
}

// NewNetworkSearcher assembles a network-level searcher. weights must be the
// per-layer MAC shares (any positive scale); area is the hardware area
// reported in aggregate metrics.
func NewNetworkSearcher(layers []LayerSearcher, repeats []int, weights []float64, area float64) *NetworkSearcher {
	if len(layers) != len(repeats) || len(layers) != len(weights) {
		panic("mapsearch: layers, repeats and weights must be parallel")
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		if total > 0 {
			norm[i] = w / total
		} else {
			norm[i] = 1 / float64(len(weights))
		}
		// Every layer keeps a minimum share so small layers still converge.
		norm[i] = math.Max(norm[i], 0.25/float64(len(weights)))
	}
	return &NetworkSearcher{
		layers:  layers,
		repeats: repeats,
		weights: norm,
		credits: make([]float64, len(layers)),
		area:    area,
	}
}

// Advance spends budget more units (budget × len(layers) layer steps).
func (n *NetworkSearcher) Advance(budget int) {
	if budget > 0 {
		stepCount.Add(uint64(budget) * uint64(len(n.layers)))
	}
	for u := 0; u < budget; u++ {
		if n.spent == 0 {
			// Bootstrap pass: every layer evaluates its first (seed)
			// schedule, establishing feasibility in one unit.
			for _, ls := range n.layers {
				ls.Step()
			}
		} else {
			for s := 0; s < len(n.layers); s++ {
				n.layers[n.nextLayer()].Step()
			}
		}
		n.spent++
		met, ok := n.aggregate()
		loss := PenaltyLoss
		if ok {
			loss = Loss(met)
		}
		// Keep the history monotone: a layer step can only improve or keep
		// that layer's best, so the aggregate is monotone by construction;
		// clamp anyway to uphold the contract under model quirks.
		if len(n.hist) > 0 && loss > n.hist[len(n.hist)-1].Loss {
			prev := n.hist[len(n.hist)-1]
			loss, met = prev.Loss, prev.M
		}
		n.hist = append(n.hist, ppa.Point{Budget: n.spent, Loss: loss, M: met})

		// Raw sample: the aggregate of each layer's most recent candidate
		// (falling back to its best when the last candidate was
		// infeasible). This is the non-monotone curve R observes.
		if raw, ok := n.rawAggregate(); ok {
			n.rawHist = append(n.rawHist, ppa.Point{
				Budget: n.spent, Loss: Loss(raw), M: raw,
			})
		} else {
			n.rawHist = append(n.rawHist, ppa.Point{Budget: n.spent, Loss: PenaltyLoss})
		}
	}
}

// AdvanceContext spends up to budget units, stopping between units once ctx
// is canceled. Uncanceled it is identical to Advance, unit for unit, so
// enabling cancellation never perturbs a run's determinism.
func (n *NetworkSearcher) AdvanceContext(ctx context.Context, budget int) {
	for u := 0; u < budget; u++ {
		if ctx.Err() != nil {
			return
		}
		n.Advance(1)
	}
}

// rawAggregate sums each layer's last evaluated candidate, using the
// layer's best as stand-in when the last evaluation was infeasible; ok is
// false while any layer has neither.
func (n *NetworkSearcher) rawAggregate() (ppa.Metrics, bool) {
	var total ppa.Metrics
	for i, ls := range n.layers {
		met, ok := ls.Last()
		if !ok {
			met, ok = ls.Best()
		}
		if !ok {
			return ppa.Metrics{}, false
		}
		total = total.Add(met.Scale(n.repeats[i]))
	}
	total.AreaMM2 = n.area
	return total, true
}

// PPAEvals returns the number of cost-model evaluations spent (budget units
// times layers).
func (n *NetworkSearcher) PPAEvals() int {
	total := 0
	for _, ls := range n.layers {
		total += ls.Evals()
	}
	return total
}

// nextLayer implements deficit round-robin over MAC shares.
func (n *NetworkSearcher) nextLayer() int {
	best := 0
	for i := range n.credits {
		n.credits[i] += n.weights[i]
		if n.credits[i] > n.credits[best] {
			best = i
		}
	}
	n.credits[best] -= 1
	return best
}

// aggregate sums the per-layer bests (scaled by repeats); ok is false while
// any layer lacks a feasible mapping.
func (n *NetworkSearcher) aggregate() (ppa.Metrics, bool) {
	var total ppa.Metrics
	for i, ls := range n.layers {
		met, ok := ls.Best()
		if !ok {
			return ppa.Metrics{}, false
		}
		total = total.Add(met.Scale(n.repeats[i]))
	}
	total.AreaMM2 = n.area
	return total, true
}

// History returns the best-so-far trajectory.
func (n *NetworkSearcher) History() ppa.History { return n.hist }

// Spent returns the budget units spent so far.
func (n *NetworkSearcher) Spent() int { return n.spent }

// Best returns the aggregate metrics of the per-layer bests.
func (n *NetworkSearcher) Best() (ppa.Metrics, bool) { return n.aggregate() }

// RawHistory returns the non-monotone raw sample trajectory.
func (n *NetworkSearcher) RawHistory() ppa.History { return n.rawHist }
