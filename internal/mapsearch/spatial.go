package mapsearch

import (
	"math/rand"

	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/ppa"
	"unico/internal/workload"
)

// Algo selects the mapping-search tool, mirroring the pluggable "SW Mapping
// Explorer" component of paper Fig. 6a.
type Algo int

const (
	// FlexTensorLike is the annealing searcher (FlexTensor stand-in).
	FlexTensorLike Algo = iota
	// GammaLike is the genetic searcher (GAMMA stand-in).
	GammaLike
	// DepthFirst is the depth-first buffer-fusion search used on the
	// Ascend-like platform.
	DepthFirst
)

func (a Algo) String() string {
	switch a {
	case FlexTensorLike:
		return "flextensor"
	case GammaLike:
		return "gamma"
	case DepthFirst:
		return "depthfirst"
	default:
		return "unknown"
	}
}

// spatialProblem adapts one layer on one spatial-accelerator configuration
// to the generic Problem interface.
type spatialProblem struct {
	eng   SpatialEngine
	cfg   hw.Spatial
	layer workload.Layer
}

func (p spatialProblem) Random(rng *rand.Rand) mapping.Spatial {
	return mapping.RandomSpatial(rng, p.layer)
}

func (p spatialProblem) Mutate(rng *rand.Rand, m mapping.Spatial) mapping.Spatial {
	return mapping.MutateSpatial(rng, m, p.layer)
}

func (p spatialProblem) Crossover(rng *rand.Rand, a, b mapping.Spatial) mapping.Spatial {
	return mapping.CrossoverSpatial(rng, a, b, p.layer)
}

func (p spatialProblem) Evaluate(m mapping.Spatial) (ppa.Metrics, error) {
	return p.eng.Evaluate(p.cfg, m, p.layer)
}

// Seeds returns the warm-start schedules: the minimal (always smallest) tile
// and a capacity-guided tile grown greedily to fill the L1 scratchpad.
func (p spatialProblem) Seeds() []mapping.Spatial {
	minimal := mapping.Spatial{TK: 1, TC: 1, TY: 1, TX: 1, TR: 1, TS: 1,
		SpatX: mapping.DimK, SpatY: mapping.DimY}.Canon(p.layer)
	guided := minimal
	// Greedily double tile dimensions while the double-buffered footprint
	// stays within L1 (mirrors the engine's residency check).
	fits := func(m mapping.Spatial) bool {
		l := p.layer
		inC := m.TC
		if l.Kind == workload.DWConv2D {
			inC = m.TK
		}
		in := inC * ((m.TY-1)*l.Stride + m.TR) * ((m.TX-1)*l.Stride + m.TS)
		w := m.TK * m.TC * m.TR * m.TS
		out := 2 * m.TK * m.TY * m.TX
		return 2*(in+w+out) <= p.cfg.L1Bytes
	}
	for progress := true; progress; {
		progress = false
		for _, d := range mapping.AllDims {
			next := guided
			switch d {
			case mapping.DimK:
				next.TK *= 2
			case mapping.DimC:
				next.TC *= 2
			case mapping.DimY:
				next.TY *= 2
			case mapping.DimX:
				next.TX *= 2
			}
			if next.TR < p.layer.R {
				next.TR *= 2
			} else if next.TS < p.layer.S {
				next.TS *= 2
			}
			next = next.Canon(p.layer)
			if next != guided && fits(next) {
				guided = next
				progress = true
			}
		}
	}
	if guided == minimal {
		return []mapping.Spatial{minimal}
	}
	return []mapping.Spatial{guided, minimal}
}

// NewSpatialSearcher builds the network-level mapping search for one spatial
// hardware configuration. Layer searches are seeded deterministically from
// seed so co-search runs are reproducible.
func NewSpatialSearcher(eng SpatialEngine, cfg hw.Spatial, w workload.Workload, algo Algo, seed int64) *NetworkSearcher {
	layers := make([]LayerSearcher, len(w.Layers))
	repeats := make([]int, len(w.Layers))
	weights := make([]float64, len(w.Layers))
	for i, l := range w.Layers {
		prob := spatialProblem{eng: eng, cfg: cfg, layer: l}
		rng := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
		switch algo {
		case GammaLike:
			layers[i] = NewGenetic[mapping.Spatial](prob, 16, rng)
		default:
			layers[i] = NewAnnealer[mapping.Spatial](prob, rng)
		}
		repeats[i] = l.Repeat
		weights[i] = float64(l.MACs() * int64(l.Repeat))
	}
	return NewNetworkSearcher(layers, repeats, weights, eng.Area(cfg))
}
