package mapsearch

import (
	"math/rand"
	"sort"

	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/ppa"
	"unico/internal/workload"
)

// ascendProblem adapts one layer on one Ascend-like core configuration to
// the generic Problem interface (used by the annealer/genetic searchers and
// as the evaluation oracle of the depth-first search).
type ascendProblem struct {
	eng   AscendEngine
	cfg   hw.Ascend
	layer workload.Layer
}

func (p ascendProblem) Random(rng *rand.Rand) mapping.Ascend {
	return mapping.RandomAscend(rng, p.layer)
}

func (p ascendProblem) Mutate(rng *rand.Rand, m mapping.Ascend) mapping.Ascend {
	return mapping.MutateAscend(rng, m, p.layer)
}

func (p ascendProblem) Crossover(rng *rand.Rand, a, b mapping.Ascend) mapping.Ascend {
	// Field-wise uniform crossover.
	out := a
	if rng.Intn(2) == 0 {
		out.TM = b.TM
	}
	if rng.Intn(2) == 0 {
		out.TK = b.TK
	}
	if rng.Intn(2) == 0 {
		out.TN = b.TN
	}
	if rng.Intn(2) == 0 {
		out.FuseDepth = b.FuseDepth
	}
	if rng.Intn(2) == 0 {
		out.DBufA, out.DBufB, out.DBufC = b.DBufA, b.DBufB, b.DBufC
	}
	return out.Canon(p.layer)
}

func (p ascendProblem) Evaluate(m mapping.Ascend) (ppa.Metrics, error) {
	return p.eng.Evaluate(p.cfg, m, p.layer)
}

// Seeds returns the warm-start schedules: the single-intrinsic tile (always
// the smallest legal cube granule) and a capacity-guided tile grown greedily
// into the L1 staging buffer.
func (p ascendProblem) Seeds() []mapping.Ascend {
	minimal := mapping.Ascend{
		TM: p.cfg.CubeM, TK: p.cfg.CubeK, TN: p.cfg.CubeN, FuseDepth: 1,
	}.Canon(p.layer)
	guided := minimal
	fits := func(m mapping.Ascend) bool {
		need := (m.TM*m.TK + m.TK*m.TN + m.TM*m.TN) * m.FuseDepth
		return need <= p.cfg.L1KB*1024 && m.TM*m.TN <= p.cfg.UBKB*1024
	}
	for progress := true; progress; {
		progress = false
		for _, grow := range []func(*mapping.Ascend){
			func(m *mapping.Ascend) { m.TM *= 2 },
			func(m *mapping.Ascend) { m.TK *= 2 },
			func(m *mapping.Ascend) { m.TN *= 2 },
		} {
			next := guided
			grow(&next)
			next = next.Canon(p.layer)
			if next != guided && fits(next) {
				guided = next
				progress = true
			}
		}
	}
	if guided == minimal {
		return []mapping.Ascend{minimal}
	}
	return []mapping.Ascend{guided, minimal}
}

// DepthFirstFusion is the depth-first buffer-fusion schedule search of the
// Ascend-like platform (paper Section 4.1, following [23, 45, 55, 63]): it
// walks the schedule tree depth-first, trying the deepest fusion and the
// largest tiles first — the most buffer-hungry schedules — and backing off
// toward shallower fusion and smaller tiles as capacity checks fail. Each
// Step evaluates exactly one schedule; once the deterministic walk is
// exhausted the searcher refines the incumbent by random mutation.
type DepthFirstFusion struct {
	prob ascendProblem
	rng  *rand.Rand

	// walk is the deterministic candidate order; pos is the next node.
	walk    []mapping.Ascend
	pos     int
	bestMet ppa.Metrics
	best    mapping.Ascend
	hasBest bool
	lastMet ppa.Metrics
	lastOK  bool
	evals   int
}

// NewDepthFirstFusion builds the depth-first searcher for one layer.
func NewDepthFirstFusion(eng AscendEngine, cfg hw.Ascend, l workload.Layer, rng *rand.Rand) *DepthFirstFusion {
	gm, gk, gn := mapping.GemmDims(l)
	d := &DepthFirstFusion{
		prob: ascendProblem{eng: eng, cfg: cfg, layer: l},
		rng:  rng,
	}
	// The warm-start seeds head the walk so feasibility is established on
	// the first steps, then the deterministic backoff sweep takes over.
	d.walk = append(d.prob.Seeds(),
		buildWalk(l, []int{4, 3, 2, 1}, descLadder(gm), descLadder(gk), descLadder(gn))...)
	return d
}

// buildWalk enumerates the schedule tree in backoff order: index tuples over
// (fusion depth, TM, TK, TN, double-buffer combo) — each axis largest /
// most aggressive first — sorted by total backoff so the walk retreats from
// the most buffer-hungry corner one resource at a time, the practical
// traversal order of depth-first fusion searchers.
func buildWalk(l workload.Layer, fuses, tms, tks, tns []int) []mapping.Ascend {
	dbufs := [][3]bool{
		{true, true, true},
		{true, true, false},
		{true, false, false},
		{false, false, false},
	}
	type node struct {
		m    mapping.Ascend
		cost int
	}
	var nodes []node
	for fi, f := range fuses {
		for mi, tm := range tms {
			for ki, tk := range tks {
				for ni, tn := range tns {
					for di, db := range dbufs {
						m := mapping.Ascend{
							TM: tm, TK: tk, TN: tn, FuseDepth: f,
							DBufA: db[0], DBufB: db[1], DBufC: db[2],
						}.Canon(l)
						nodes = append(nodes, node{m: m, cost: fi + mi + ki + ni + di})
					}
				}
			}
		}
	}
	sort.SliceStable(nodes, func(a, b int) bool { return nodes[a].cost < nodes[b].cost })
	// No realistic budget visits more than the first couple thousand nodes;
	// truncating bounds per-layer memory.
	if len(nodes) > 2048 {
		nodes = nodes[:2048]
	}
	walk := make([]mapping.Ascend, len(nodes))
	for i, n := range nodes {
		walk[i] = n.m
	}
	return walk
}

// descLadder returns the candidate tile sizes for a bound, largest first,
// thinned to at most eight rungs spread geometrically across the whole
// range (the walk must be able to back off all the way to tiny tiles for
// huge layers).
func descLadder(bound int) []int {
	var vals []int
	for p := 1; p <= bound; p *= 2 {
		vals = append(vals, p)
	}
	if vals[len(vals)-1] != bound {
		vals = append(vals, bound)
	}
	// Largest first.
	for i, j := 0, len(vals)-1; i < j; i, j = i+1, j-1 {
		vals[i], vals[j] = vals[j], vals[i]
	}
	const maxRungs = 8
	if len(vals) <= maxRungs {
		return vals
	}
	// Even subsample keeping both endpoints.
	out := make([]int, 0, maxRungs)
	for i := 0; i < maxRungs; i++ {
		out = append(out, vals[i*(len(vals)-1)/(maxRungs-1)])
	}
	return out
}

// Step spends one evaluation.
func (d *DepthFirstFusion) Step() {
	d.evals++
	var cand mapping.Ascend
	if d.pos < len(d.walk) {
		cand = d.walk[d.pos]
		d.pos++
	} else if d.hasBest {
		cand = mapping.MutateAscend(d.rng, d.best, d.prob.layer)
	} else {
		cand = mapping.RandomAscend(d.rng, d.prob.layer)
	}
	met, err := d.prob.Evaluate(cand)
	if err != nil {
		d.lastOK = false
		return
	}
	d.lastMet, d.lastOK = met, true
	if !d.hasBest || Loss(met) < Loss(d.bestMet) {
		d.best, d.bestMet, d.hasBest = cand, met, true
	}
}

// Best returns the best feasible metrics found so far.
func (d *DepthFirstFusion) Best() (ppa.Metrics, bool) { return d.bestMet, d.hasBest }

// Last returns the most recent evaluation's metrics.
func (d *DepthFirstFusion) Last() (ppa.Metrics, bool) { return d.lastMet, d.lastOK }

// BestCandidate returns the best schedule found so far.
func (d *DepthFirstFusion) BestCandidate() (mapping.Ascend, bool) { return d.best, d.hasBest }

// Evals returns the number of evaluations spent.
func (d *DepthFirstFusion) Evals() int { return d.evals }

// NewAscendSearcher builds the network-level schedule search for one
// Ascend-like core configuration.
func NewAscendSearcher(eng AscendEngine, cfg hw.Ascend, w workload.Workload, algo Algo, seed int64) *NetworkSearcher {
	layers := make([]LayerSearcher, len(w.Layers))
	repeats := make([]int, len(w.Layers))
	weights := make([]float64, len(w.Layers))
	for i, l := range w.Layers {
		rng := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
		prob := ascendProblem{eng: eng, cfg: cfg, layer: l}
		switch algo {
		case FlexTensorLike:
			layers[i] = NewAnnealer[mapping.Ascend](prob, rng)
		case GammaLike:
			layers[i] = NewGenetic[mapping.Ascend](prob, 16, rng)
		default:
			layers[i] = NewDepthFirstFusion(eng, cfg, l, rng)
		}
		repeats[i] = l.Repeat
		weights[i] = float64(l.MACs() * int64(l.Repeat))
	}
	return NewNetworkSearcher(layers, repeats, weights, eng.Area(cfg))
}
