// Package mapsearch implements the software-mapping exploration tools of the
// inner co-optimization level (paper Section 2.1 and Fig. 2).
//
// Three searchers are provided, mirroring the tools the paper plugs in:
//
//   - Annealer: a temperature-scheduled mutation search with restart, the
//     stand-in for FlexTensor's Q-learning-guided scheduler [68].
//   - Genetic: a steady-state genetic algorithm with tournament selection,
//     uniform crossover and mutation, the stand-in for GAMMA [32].
//   - DepthFirstFusion (in ascend.go): the depth-first buffer-fusion search
//     used on the Ascend-like platform (Section 4.1).
//
// All searchers honour the mature-tool contract of paper Section 3.1: one
// Step costs exactly one PPA evaluation, the best-so-far loss is monotone
// non-increasing in budget, and searches are resumable so successive halving
// can hand out budget in installments.
//
// A NetworkSearcher aggregates per-layer searchers into the network-level
// search the co-optimizer drives: each budget unit advances one layer
// (weighted by its share of the network's MACs) and the network history
// records the aggregate (latency, power, EDP) of the per-layer bests.
package mapsearch

import (
	"math"
	"math/rand"

	"unico/internal/ppa"
)

// Problem defines one layer's mapping search space for the generic
// searchers: candidate generation, neighbourhood moves and evaluation.
type Problem[M any] interface {
	// Random draws a uniformly random candidate.
	Random(rng *rand.Rand) M
	// Mutate returns a neighbour of m.
	Mutate(rng *rand.Rand, m M) M
	// Crossover recombines two candidates.
	Crossover(rng *rand.Rand, a, b M) M
	// Evaluate returns the candidate's metrics, or an error if it is
	// infeasible on the hardware under search.
	Evaluate(m M) (ppa.Metrics, error)
}

// Seeder is an optional Problem extension providing deterministic seed
// candidates the searchers evaluate before any random exploration. Platforms
// use it to start from the minimal (always-legal) schedule plus a
// capacity-guided guess, the warm start mature mapping tools apply.
type Seeder[M any] interface {
	Seeds() []M
}

// seedsOf returns the problem's seeds, if any.
func seedsOf[M any](p Problem[M]) []M {
	if s, ok := p.(Seeder[M]); ok {
		return s.Seeds()
	}
	return nil
}

// LayerSearcher is a resumable single-layer mapping search. Implementations
// must make every Step cost exactly one Problem.Evaluate call.
type LayerSearcher interface {
	// Step spends one evaluation.
	Step()
	// Best returns the metrics of the best feasible mapping found, and
	// whether any feasible mapping has been found yet.
	Best() (ppa.Metrics, bool)
	// Last returns the metrics of the most recently evaluated candidate
	// (feasible or not): the raw sample the robustness metric observes.
	Last() (ppa.Metrics, bool)
	// Evals returns the number of evaluations spent.
	Evals() int
}

// Loss is the mapping-search objective: energy-delay product, so that both
// latency and power movements are visible to the robustness metric
// (paper Section 3.4).
func Loss(m ppa.Metrics) float64 { return m.EDP() }

// Annealer is a simulated-annealing mapping search with periodic restarts,
// standing in for FlexTensor. The acceptance temperature is set relative to
// the running loss scale so the schedule is workload-independent.
type Annealer[M any] struct {
	prob Problem[M]
	rng  *rand.Rand

	cur      M
	curLoss  float64
	hasCur   bool
	best     M
	bestLoss float64
	bestMet  ppa.Metrics
	hasBest  bool
	lastMet  ppa.Metrics
	lastOK   bool
	evals    int

	// restartEvery forces a random restart after this many non-improving
	// steps, escaping basins the mutation moves cannot leave.
	restartEvery int
	sinceImprove int
	seeds        []M
}

// NewAnnealer builds an annealing searcher over the problem.
func NewAnnealer[M any](prob Problem[M], rng *rand.Rand) *Annealer[M] {
	return &Annealer[M]{
		prob: prob, rng: rng,
		curLoss: math.Inf(1), bestLoss: math.Inf(1),
		restartEvery: 60,
		seeds:        seedsOf(prob),
	}
}

// Step spends one evaluation.
func (a *Annealer[M]) Step() {
	var cand M
	switch {
	case a.evals < len(a.seeds):
		cand = a.seeds[a.evals]
	case !a.hasCur || a.sinceImprove >= a.restartEvery:
		cand = a.prob.Random(a.rng)
		a.sinceImprove = 0
	default:
		cand = a.prob.Mutate(a.rng, a.cur)
	}
	a.evals++
	met, err := a.prob.Evaluate(cand)
	if err != nil {
		a.lastOK = false
		a.sinceImprove++
		return
	}
	a.lastMet, a.lastOK = met, true
	loss := Loss(met)
	// Metropolis acceptance with a temperature proportional to the current
	// loss scale, cooling with the evaluation count.
	temp := 0.3 * a.curLoss / (1 + float64(a.evals)/40)
	accept := !a.hasCur || loss <= a.curLoss
	if !accept && temp > 0 && !math.IsInf(a.curLoss, 1) {
		accept = a.rng.Float64() < math.Exp(-(loss-a.curLoss)/temp)
	}
	if accept {
		a.cur, a.curLoss, a.hasCur = cand, loss, true
	}
	if loss < a.bestLoss {
		a.best, a.bestLoss, a.bestMet, a.hasBest = cand, loss, met, true
		a.sinceImprove = 0
	} else {
		a.sinceImprove++
	}
}

// Best returns the best feasible metrics found so far.
func (a *Annealer[M]) Best() (ppa.Metrics, bool) { return a.bestMet, a.hasBest }

// Last returns the most recent evaluation's metrics.
func (a *Annealer[M]) Last() (ppa.Metrics, bool) { return a.lastMet, a.lastOK }

// BestCandidate returns the best mapping found so far.
func (a *Annealer[M]) BestCandidate() (M, bool) { return a.best, a.hasBest }

// Evals returns the number of evaluations spent.
func (a *Annealer[M]) Evals() int { return a.evals }

// Genetic is a steady-state genetic algorithm, standing in for GAMMA: a
// fixed-size population evolves by tournament selection, uniform crossover
// and mutation, replacing the worst member when the child improves on it.
type Genetic[M any] struct {
	prob Problem[M]
	rng  *rand.Rand

	popSize int
	pop     []geneticMember[M]
	bestMet ppa.Metrics
	best    M
	hasBest bool
	lastMet ppa.Metrics
	lastOK  bool
	evals   int
	seeds   []M
}

type geneticMember[M any] struct {
	cand M
	loss float64
	met  ppa.Metrics
}

// NewGenetic builds a genetic searcher with the given population size
// (GAMMA's default neighbourhood of ~20 works well here too).
func NewGenetic[M any](prob Problem[M], popSize int, rng *rand.Rand) *Genetic[M] {
	if popSize < 2 {
		popSize = 2
	}
	return &Genetic[M]{prob: prob, rng: rng, popSize: popSize, seeds: seedsOf(prob)}
}

// Step spends one evaluation: seed the population first, then evolve.
func (g *Genetic[M]) Step() {
	g.evals++
	var cand M
	if len(g.pop) < g.popSize {
		if n := len(g.pop); n < len(g.seeds) {
			cand = g.seeds[n]
		} else {
			cand = g.prob.Random(g.rng)
		}
	} else {
		p1 := g.tournament()
		p2 := g.tournament()
		cand = g.prob.Crossover(g.rng, g.pop[p1].cand, g.pop[p2].cand)
		if g.rng.Float64() < 0.7 {
			cand = g.prob.Mutate(g.rng, cand)
		}
	}
	met, err := g.prob.Evaluate(cand)
	loss := math.Inf(1)
	if err == nil {
		loss = Loss(met)
		g.lastMet, g.lastOK = met, true
	} else {
		g.lastOK = false
	}
	member := geneticMember[M]{cand: cand, loss: loss, met: met}
	if len(g.pop) < g.popSize {
		g.pop = append(g.pop, member)
	} else if wi := g.worst(); loss < g.pop[wi].loss {
		g.pop[wi] = member
	}
	if err == nil && (!g.hasBest || loss < Loss(g.bestMet)) {
		g.best, g.bestMet, g.hasBest = cand, met, true
	}
}

// tournament returns the index of the better of two random members.
func (g *Genetic[M]) tournament() int {
	i := g.rng.Intn(len(g.pop))
	j := g.rng.Intn(len(g.pop))
	if g.pop[j].loss < g.pop[i].loss {
		return j
	}
	return i
}

// worst returns the index of the highest-loss member.
func (g *Genetic[M]) worst() int {
	wi := 0
	for i := range g.pop {
		if g.pop[i].loss > g.pop[wi].loss {
			wi = i
		}
	}
	return wi
}

// Best returns the best feasible metrics found so far.
func (g *Genetic[M]) Best() (ppa.Metrics, bool) { return g.bestMet, g.hasBest }

// Last returns the most recent evaluation's metrics.
func (g *Genetic[M]) Last() (ppa.Metrics, bool) { return g.lastMet, g.lastOK }

// BestCandidate returns the best mapping found so far.
func (g *Genetic[M]) BestCandidate() (M, bool) { return g.best, g.hasBest }

// Evals returns the number of evaluations spent.
func (g *Genetic[M]) Evals() int { return g.evals }
