package mapsearch

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"unico/internal/hw"
	"unico/internal/maestro"
	"unico/internal/ppa"
	"unico/internal/workload"
)

// quadProblem is a synthetic 1D problem with known optimum: candidates are
// ints, loss (v-17)^2 + 1 (metrics latency/power derived from it).
type quadProblem struct {
	infeasibleBelow int // candidates below this value are infeasible
}

func (quadProblem) Random(rng *rand.Rand) int { return rng.Intn(64) }
func (quadProblem) Mutate(rng *rand.Rand, v int) int {
	step := rng.Intn(5) - 2
	out := v + step
	if out < 0 {
		out = 0
	}
	if out > 63 {
		out = 63
	}
	return out
}
func (quadProblem) Crossover(rng *rand.Rand, a, b int) int { return (a + b) / 2 }
func (p quadProblem) Evaluate(v int) (ppa.Metrics, error) {
	if v < p.infeasibleBelow {
		return ppa.Metrics{}, errors.New("infeasible")
	}
	d := float64(v - 17)
	loss := d*d + 1
	lat := math.Sqrt(loss)
	return ppa.Metrics{LatencyMs: lat, PowerMW: lat, AreaMM2: 1, EnergyUJ: lat * lat}, nil
}

func TestAnnealerConvergesOnQuadratic(t *testing.T) {
	p := quadProblem{}
	a := NewAnnealer[int](p, rand.New(rand.NewSource(1)))
	for i := 0; i < 400; i++ {
		a.Step()
	}
	met, ok := a.Best()
	if !ok {
		t.Fatal("no feasible candidate found")
	}
	if Loss(met) > 30 { // optimum loss = 1*1*1 = 1 EDP-ish
		t.Errorf("annealer final loss %v too high", Loss(met))
	}
	if a.Evals() != 400 {
		t.Errorf("Evals() = %d, want 400", a.Evals())
	}
	if best, ok := a.BestCandidate(); !ok || best < 10 || best > 24 {
		t.Errorf("BestCandidate() = %d, want near 17", best)
	}
}

func TestGeneticConvergesOnQuadratic(t *testing.T) {
	p := quadProblem{}
	g := NewGenetic[int](p, 12, rand.New(rand.NewSource(2)))
	for i := 0; i < 400; i++ {
		g.Step()
	}
	met, ok := g.Best()
	if !ok {
		t.Fatal("no feasible candidate found")
	}
	if Loss(met) > 30 {
		t.Errorf("genetic final loss %v too high", Loss(met))
	}
}

func TestSearchersToleratePartialInfeasibility(t *testing.T) {
	p := quadProblem{infeasibleBelow: 30} // optimum at boundary v = 30
	a := NewAnnealer[int](p, rand.New(rand.NewSource(3)))
	g := NewGenetic[int](p, 8, rand.New(rand.NewSource(4)))
	for i := 0; i < 300; i++ {
		a.Step()
		g.Step()
	}
	if _, ok := a.Best(); !ok {
		t.Error("annealer found nothing with 50% infeasible space")
	}
	if _, ok := g.Best(); !ok {
		t.Error("genetic found nothing with 50% infeasible space")
	}
}

// seededProblem records whether seeds were evaluated first.
type seededProblem struct {
	quadProblem
	log *[]int
}

func (p seededProblem) Seeds() []int { return []int{40, 41} }
func (p seededProblem) Evaluate(v int) (ppa.Metrics, error) {
	*p.log = append(*p.log, v)
	return p.quadProblem.Evaluate(v)
}

func TestSeedsEvaluatedFirst(t *testing.T) {
	var log []int
	p := seededProblem{log: &log}
	a := NewAnnealer[int](Problem[int](p), rand.New(rand.NewSource(5)))
	a.Step()
	a.Step()
	a.Step()
	if len(log) < 2 || log[0] != 40 || log[1] != 41 {
		t.Errorf("seed order = %v, want [40 41 ...]", log)
	}

	log = nil
	g := NewGenetic[int](Problem[int](p), 6, rand.New(rand.NewSource(6)))
	g.Step()
	g.Step()
	if len(log) < 2 || log[0] != 40 || log[1] != 41 {
		t.Errorf("genetic seed order = %v, want [40 41 ...]", log)
	}
}

func TestFeasibleSuffix(t *testing.T) {
	h := ppa.History{
		{Budget: 1, Loss: PenaltyLoss},
		{Budget: 2, Loss: PenaltyLoss},
		{Budget: 3, Loss: 5},
		{Budget: 4, Loss: 3},
	}
	fh := Feasible(h)
	if len(fh) != 2 || fh[0].Loss != 5 {
		t.Errorf("Feasible = %+v", fh)
	}
	if Feasible(ppa.History{{Budget: 1, Loss: PenaltyLoss}}) != nil {
		t.Error("all-penalty history should yield nil")
	}
}

// fakeLayer is a trivial always-feasible layer searcher for NetworkSearcher
// unit tests.
type fakeLayer struct {
	evals int
	loss  float64
}

func (f *fakeLayer) Step() {
	f.evals++
	if f.loss > 1 {
		f.loss *= 0.9
	}
}
func (f *fakeLayer) Best() (ppa.Metrics, bool) {
	if f.evals == 0 {
		return ppa.Metrics{}, false
	}
	return ppa.Metrics{LatencyMs: f.loss, PowerMW: 1, AreaMM2: 1, EnergyUJ: f.loss}, true
}
func (f *fakeLayer) Last() (ppa.Metrics, bool) { return f.Best() }
func (f *fakeLayer) Evals() int                { return f.evals }

func TestNetworkSearcherBudgetSemantics(t *testing.T) {
	layers := []LayerSearcher{&fakeLayer{loss: 100}, &fakeLayer{loss: 50}, &fakeLayer{loss: 10}}
	ns := NewNetworkSearcher(layers, []int{1, 2, 1}, []float64{100, 10, 1}, 3.5)
	ns.Advance(10)
	if ns.Spent() != 10 {
		t.Errorf("Spent() = %d", ns.Spent())
	}
	// One budget unit = len(layers) layer steps.
	if got := ns.PPAEvals(); got != 30 {
		t.Errorf("PPAEvals() = %d, want 30", got)
	}
	// The first (bootstrap) unit must touch every layer once.
	for i, l := range layers {
		if l.(*fakeLayer).evals == 0 {
			t.Errorf("layer %d never stepped", i)
		}
	}
	met, ok := ns.Best()
	if !ok {
		t.Fatal("aggregate infeasible")
	}
	if met.AreaMM2 != 3.5 {
		t.Errorf("area = %v, want platform area 3.5", met.AreaMM2)
	}
	if len(ns.History()) != 10 {
		t.Errorf("history length %d, want 10", len(ns.History()))
	}
	if !ns.History().Monotone() {
		t.Error("history not monotone")
	}
}

func TestNetworkSearcherWeightsBiasBudget(t *testing.T) {
	heavy := &fakeLayer{loss: 100}
	light := &fakeLayer{loss: 100}
	ns := NewNetworkSearcher(
		[]LayerSearcher{heavy, light}, []int{1, 1}, []float64{100, 1}, 1)
	ns.Advance(50)
	if heavy.evals <= light.evals {
		t.Errorf("heavy layer got %d evals <= light %d", heavy.evals, light.evals)
	}
	if light.evals == 0 {
		t.Error("light layer starved")
	}
}

func TestNetworkSearcherPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched slices accepted")
		}
	}()
	NewNetworkSearcher([]LayerSearcher{&fakeLayer{}}, []int{1, 2}, []float64{1}, 1)
}

func TestSpatialSearcherEndToEnd(t *testing.T) {
	eng := maestro.Engine{}
	cfg := hw.Spatial{PEX: 6, PEY: 6, L1Bytes: 1728, L2KB: 432, NoCBW: 128, Dataflow: hw.OutputStationary}
	w := workload.MobileNet()
	for _, algo := range []Algo{FlexTensorLike, GammaLike} {
		ns := NewSpatialSearcher(eng, cfg, w, algo, 11)
		ns.Advance(20)
		met, ok := ns.Best()
		if !ok {
			t.Fatalf("%v: no feasible network mapping", algo)
		}
		if !met.Valid() {
			t.Fatalf("%v: invalid metrics %+v", algo, met)
		}
		if !ns.History().Monotone() {
			t.Errorf("%v: non-monotone history", algo)
		}
		// Resumability: advancing more must not worsen the best.
		before := ns.History().Last().Loss
		ns.Advance(20)
		if after := ns.History().Last().Loss; after > before {
			t.Errorf("%v: loss rose from %v to %v after more budget", algo, before, after)
		}
	}
}

func TestSpatialSearcherDeterministic(t *testing.T) {
	eng := maestro.Engine{}
	cfg := hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 864, L2KB: 96, NoCBW: 64, Dataflow: hw.WeightStationary}
	w := workload.ViT()
	run := func() float64 {
		ns := NewSpatialSearcher(eng, cfg, w, FlexTensorLike, 42)
		ns.Advance(15)
		return ns.History().Last().Loss
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}

// TestHistoryMonotoneProperty drives random spatial configs and checks the
// monotone contract of paper Section 3.1 on real searches.
func TestHistoryMonotoneProperty(t *testing.T) {
	eng := maestro.Engine{}
	space := hw.NewSpatialSpace(hw.Edge)
	w := workload.MobileNetV3Small()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := space.Decode(space.Sample(rng))
		ns := NewSpatialSearcher(eng, cfg, w, FlexTensorLike, seed)
		ns.Advance(8)
		return ns.History().Monotone()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAlgoString(t *testing.T) {
	if FlexTensorLike.String() != "flextensor" || GammaLike.String() != "gamma" ||
		DepthFirst.String() != "depthfirst" {
		t.Error("algo strings wrong")
	}
}
