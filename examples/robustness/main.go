// Robustness study (the paper's Sections 4.3-4.4 in miniature): co-optimize
// on a training set of networks with and without the sensitivity objective
// R, then validate both representative designs on networks the search never
// saw. The robustness-aware design should generalize better.
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"

	"unico"
)

func main() {
	training := []string{"UNet", "SRGAN", "Bert"}
	validation := []string{"ResNet", "VIT", "MobileNet"}

	p, err := unico.OpenSourcePlatform(unico.Edge, training...)
	if err != nil {
		log.Fatal(err)
	}

	cfg := unico.Config{BatchSize: 10, Iterations: 6, BudgetMax: 60, Seed: 3}

	fmt.Println("co-optimizing WITH the robustness objective R ...")
	withR, err := unico.Optimize(p, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("co-optimizing WITHOUT the robustness objective R ...")
	cfgNoR := cfg
	cfgNoR.DisableRobustness = true
	cfgNoR.Seed = 4
	withoutR, err := unico.Optimize(p, cfgNoR)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nwith R:    %s (R=%.3f)\n", withR.Best.HW, withR.Best.Sensitivity)
	fmt.Printf("without R: %s (R=%.3f)\n\n", withoutR.Best.HW, withoutR.Best.Sensitivity)

	fmt.Printf("%-12s %18s %18s\n", "validation", "with-R latency", "without-R latency")
	var sumR, sumNoR float64
	for _, net := range validation {
		vp, err := unico.OpenSourcePlatform(unico.Edge, net)
		if err != nil {
			log.Fatal(err)
		}
		a, errA := unico.EvaluateOn(vp, withR.Best, 60, 101)
		b, errB := unico.EvaluateOn(vp, withoutR.Best, 60, 102)
		if errA != nil || errB != nil {
			fmt.Printf("%-12s infeasible (%v / %v)\n", net, errA, errB)
			continue
		}
		sumR += a.LatencyMs
		sumNoR += b.LatencyMs
		fmt.Printf("%-12s %15.3f ms %15.3f ms\n", net, a.LatencyMs, b.LatencyMs)
	}
	if sumNoR > 0 {
		fmt.Printf("\naverage unseen-network latency: with R %.3f ms, without R %.3f ms (%.1f%% difference)\n",
			sumR/3, sumNoR/3, (sumNoR-sumR)/sumNoR*100)
	}
}
