// Edge-vs-cloud method comparison: the Table 1/2 workflow of the paper on
// one network. UNICO, the HASCO-like baseline and NSGA-II each co-optimize
// a spatial accelerator for ResNet under the edge and cloud constraints;
// the example prints each method's representative design and search cost.
//
//	go run ./examples/edgecloud
package main

import (
	"fmt"
	"log"

	"unico"
)

func main() {
	for _, sc := range []struct {
		name string
		s    unico.Scenario
	}{{"edge (power < 2 W)", unico.Edge}, {"cloud (power < 20 W)", unico.Cloud}} {
		fmt.Printf("=== %s ===\n", sc.name)
		p, err := unico.OpenSourcePlatform(sc.s, "ResNet")
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range []unico.Method{unico.MethodHASCO, unico.MethodNSGAII, unico.MethodUNICO} {
			iters := 4
			if m == unico.MethodUNICO {
				// UNICO's iterations are several times cheaper (batched,
				// early-stopped, parallel), so it affords more of them and
				// still finishes first — the cost asymmetry of Tables 1-2.
				iters = 12
			}
			res, err := unico.Optimize(p, unico.Config{
				Method:     m,
				BatchSize:  10,
				Iterations: iters,
				BudgetMax:  60,
				Seed:       11,
			})
			if err != nil {
				log.Fatal(err)
			}
			if res.Best.HW == "" {
				fmt.Printf("%-8s no feasible design (cost %.2f h)\n", m, res.SimulatedHours)
				continue
			}
			fmt.Printf("%-8s L=%9.3f ms  P=%8.1f mW  A=%5.2f mm²  cost %.2f h  %s\n",
				m, res.Best.LatencyMs, res.Best.PowerMW, res.Best.AreaMM2,
				res.SimulatedHours, res.Best.HW)
		}
	}
}
