// Distributed co-optimization (paper Fig. 6): this example starts three
// in-process worker nodes — each serving the PPA REST API and hosting
// mapping-search jobs — and drives a full UNICO run from the master with
// every software-mapping job executing over HTTP on the worker pool.
//
// In a real deployment the workers are `cmd/ppaserver` processes on slave
// machines; httptest servers here make the example self-contained.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"unico/internal/core"
	"unico/internal/dist"
	"unico/internal/hw"
)

func main() {
	// Start three worker nodes (stand-ins for slave machines).
	var workers []*dist.Client
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(dist.NewServer().Handler())
		defer srv.Close()
		client := dist.NewClient(srv.URL, srv.Client())
		if !client.Healthy() {
			log.Fatalf("worker %d failed its health check", i)
		}
		workers = append(workers, client)
		fmt.Printf("worker %d: %s\n", i, srv.URL)
	}

	// The master-side platform fans mapping-search jobs across the pool.
	p, err := dist.NewRemoteSpatialPlatform(workers, hw.Edge, []string{"MobileNet"})
	if err != nil {
		log.Fatal(err)
	}

	opt := core.UNICOOptions(9, 4, 50, 21)
	opt.Workers = len(workers)
	res := core.Run(p, opt)

	fmt.Printf("\ndistributed run: %d candidates evaluated, %.2f simulated hours\n",
		len(res.All), res.Hours)
	fmt.Printf("Pareto front: %d designs\n", len(res.Front))
	if rep, ok := core.Representative(res.Front); ok {
		fmt.Printf("representative: %s  %s\n", p.Describe(rep.X), rep.Metrics)
	}
}
