// Ascend-like industrial case study (paper Section 4.6 in miniature): UNICO
// searches the DaVinci-style core's buffer/bank/cube configuration for
// FSRCNN super-resolution using the cycle-level CAModel simulator, and the
// discovered core is compared against the expert default under the same
// schedule-search budget.
//
//	go run ./examples/ascend
package main

import (
	"fmt"
	"log"

	"unico"
	"unico/internal/hw"
	"unico/internal/mapsearch"
	"unico/internal/platform"
	"unico/internal/workload"
)

func main() {
	const network = "FSRCNN-120x320"
	p, err := unico.AscendLikePlatform(network)
	if err != nil {
		log.Fatal(err)
	}

	// Paper settings are N=8, MaxIter=30, b_max=200; this example shrinks
	// them to stay interactive.
	res, err := unico.Optimize(p, unico.Config{
		BatchSize:  6,
		Iterations: 5,
		BudgetMax:  40,
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Best.HW == "" {
		log.Fatal("no feasible core found — increase Iterations")
	}

	// Evaluate the expert default core under the same schedule budget.
	def := hw.DefaultAscend()
	ap := platform.NewAscend([]workload.Workload{mustNet(network)}, mapsearch.DepthFirst)
	job := ap.NewJob(ap.AscendSpace().Encode(def), 5)
	job.Advance(40)
	defMet, ok := job.Best()
	if !ok {
		log.Fatal("default core has no feasible schedule")
	}

	fmt.Printf("network: %s (CAModel simulation, %d budget units)\n\n", network, res.Evaluations)
	fmt.Printf("expert default: %s\n", def)
	fmt.Printf("  latency %.4f ms, power %.1f mW\n\n", defMet.LatencyMs, defMet.PowerMW)
	fmt.Printf("UNICO-found:    %s\n", res.Best.HW)
	fmt.Printf("  latency %.4f ms, power %.1f mW\n\n", res.Best.LatencyMs, res.Best.PowerMW)
	fmt.Printf("latency saving: %.1f%%   power saving: %.1f%%   (search cost %.1f simulated hours)\n",
		(defMet.LatencyMs-res.Best.LatencyMs)/defMet.LatencyMs*100,
		(defMet.PowerMW-res.Best.PowerMW)/defMet.PowerMW*100,
		res.SimulatedHours)
}

func mustNet(name string) workload.Workload {
	w, err := workload.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	return w
}
