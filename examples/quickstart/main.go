// Quickstart: co-optimize a spatial accelerator for MobileNet on the edge
// scenario with full UNICO, then print the Pareto front and the
// representative design.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"unico"
)

func main() {
	// Build the open-source spatial-accelerator platform (paper Fig. 1)
	// under the edge power constraint (< 2 W) for one network.
	p, err := unico.OpenSourcePlatform(unico.Edge, "MobileNet")
	if err != nil {
		log.Fatal(err)
	}

	// Run UNICO. Small settings keep the example fast; the zero Config
	// would use the paper's defaults (N = 30, b_max = 300).
	res, err := unico.Optimize(p, unico.Config{
		BatchSize:  12,
		Iterations: 6,
		BudgetMax:  80,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("search cost: %.2f simulated hours (%d budget units)\n",
		res.SimulatedHours, res.Evaluations)
	fmt.Printf("Pareto front: %d designs\n", len(res.Front))
	for _, d := range res.Front {
		fmt.Printf("  %-50s L=%8.3f ms  P=%7.1f mW  A=%5.2f mm²  R=%.3f\n",
			d.HW, d.LatencyMs, d.PowerMW, d.AreaMM2, d.Sensitivity)
	}
	fmt.Printf("\nrepresentative design: %s\n", res.Best.HW)
	fmt.Printf("  latency %.3f ms, power %.1f mW, area %.2f mm²\n",
		res.Best.LatencyMs, res.Best.PowerMW, res.Best.AreaMM2)
}
