package unico

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestNetworksListsZoo(t *testing.T) {
	names := Networks()
	if len(names) < 15 {
		t.Fatalf("only %d networks", len(names))
	}
	want := map[string]bool{"ResNet": true, "Bert": true, "DLEU": true, "FSRCNN-120x320": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing networks: %v", want)
	}
}

func TestPlatformConstructorErrors(t *testing.T) {
	if _, err := OpenSourcePlatform(Edge); err == nil {
		t.Error("no networks accepted")
	}
	if _, err := OpenSourcePlatform(Edge, "NoSuchNet"); err == nil {
		t.Error("unknown network accepted")
	}
	if _, err := AscendLikePlatform("NoSuchNet"); err == nil {
		t.Error("unknown network accepted on ascend")
	}
}

func TestOptimizeUNICO(t *testing.T) {
	p, err := OpenSourcePlatform(Edge, "MobileNetV3-S")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(p, Config{BatchSize: 6, Iterations: 3, BudgetMax: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if res.Best.HW == "" {
		t.Fatal("no representative design")
	}
	if res.SimulatedHours <= 0 || res.Evaluations <= 0 {
		t.Errorf("cost accounting: %+v", res)
	}
	for _, d := range res.Front {
		if d.LatencyMs <= 0 || d.PowerMW <= 0 || d.AreaMM2 <= 0 {
			t.Errorf("degenerate design %+v", d)
		}
		if d.PowerMW > 2000 {
			t.Errorf("edge power cap violated: %v", d.PowerMW)
		}
	}
}

func TestOptimizeAllMethods(t *testing.T) {
	p, err := OpenSourcePlatform(Edge, "MobileNetV3-S")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodUNICO, MethodHASCO, MethodMOBOHB, MethodNSGAII} {
		res, err := Optimize(p, Config{
			Method: m, BatchSize: 6, Iterations: 2, BudgetMax: 10, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(res.Front) == 0 {
			t.Errorf("%v: empty front", m)
		}
	}
}

func TestOptimizeValidation(t *testing.T) {
	if _, err := Optimize(nil, Config{}); err == nil {
		t.Error("nil platform accepted")
	}
	p, _ := OpenSourcePlatform(Edge, "MobileNetV3-S")
	if _, err := Optimize(p, Config{Method: Method(42)}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestEvaluateOnUnseenNetwork(t *testing.T) {
	p, err := OpenSourcePlatform(Edge, "MobileNetV3-S")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(p, Config{BatchSize: 6, Iterations: 2, BudgetMax: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	vp, err := OpenSourcePlatform(Edge, "MobileNet")
	if err != nil {
		t.Fatal(err)
	}
	d, err := EvaluateOn(vp, res.Best, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.LatencyMs <= 0 {
		t.Errorf("validation latency %v", d.LatencyMs)
	}
	if d.HW != res.Best.HW {
		t.Errorf("hardware identity lost: %q vs %q", d.HW, res.Best.HW)
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		MethodUNICO: "UNICO", MethodHASCO: "HASCO",
		MethodMOBOHB: "MOBOHB", MethodNSGAII: "NSGAII",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
	if !strings.Contains(Method(9).String(), "9") {
		t.Error("unknown method string")
	}
}

func TestAscendLikePlatformOptimize(t *testing.T) {
	p, err := AscendLikePlatform("FSRCNN-120x320")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(p, Config{BatchSize: 5, Iterations: 2, BudgetMax: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty ascend front")
	}
	for _, d := range res.Front {
		if d.AreaMM2 > 200 {
			t.Errorf("area cap violated: %v", d.AreaMM2)
		}
	}
}

func TestOpenSourcePlatformFromJSON(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/net.json"
	def := `{"name":"Tiny","layers":[
	  {"name":"c1","kind":"conv","k":8,"c":3,"y":16,"x":16,"r":3,"s":3},
	  {"name":"fc","kind":"gemm","m":1,"kin":128,"nout":10}]}`
	if err := os.WriteFile(path, []byte(def), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := OpenSourcePlatformFromJSON(Edge, path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(p, Config{BatchSize: 4, Iterations: 2, BudgetMax: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("custom-workload co-optimization found nothing")
	}
	if _, err := OpenSourcePlatformFromJSON(Edge); err == nil {
		t.Error("no files accepted")
	}
	if _, err := OpenSourcePlatformFromJSON(Edge, dir+"/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestOptimizeCacheBitIdentical(t *testing.T) {
	run := func(cfg Config) *Result {
		p, err := OpenSourcePlatform(Edge, "MobileNetV3-S")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Optimize(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	base := Config{BatchSize: 4, Iterations: 2, BudgetMax: 10, Seed: 3}
	plain := run(base)

	withCache := base
	withCache.Cache = true
	cached := run(withCache)

	if cached.CacheHits == 0 {
		t.Error("cached run recorded no cache hits")
	}
	if !reflect.DeepEqual(plain.Front, cached.Front) {
		t.Errorf("cached front differs:\n off %+v\n on  %+v", plain.Front, cached.Front)
	}
	if plain.Evaluations != cached.Evaluations || plain.SimulatedHours != cached.SimulatedHours {
		t.Errorf("cached accounting differs: evals %d vs %d, sim %v vs %v h",
			plain.Evaluations, cached.Evaluations, plain.SimulatedHours, cached.SimulatedHours)
	}

	// Optimize must not mutate the caller's platform when enabling the cache.
	p, err := OpenSourcePlatform(Edge, "MobileNetV3-S")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(p, withCache); err != nil {
		t.Fatal(err)
	}
	again, err := Optimize(p, base)
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHits != 0 || again.CacheMisses != 0 {
		t.Error("cache leaked into a cache-off run on the same platform value")
	}
}

func TestOptimizeCacheFileWarmStart(t *testing.T) {
	file := filepath.Join(t.TempDir(), "cache.jsonl")
	cfg := Config{BatchSize: 4, Iterations: 2, BudgetMax: 10, Seed: 3, CacheFile: file}

	run := func() *Result {
		p, err := OpenSourcePlatform(Edge, "MobileNetV3-S")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Optimize(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	cold := run()
	if cold.CacheMisses == 0 {
		t.Fatal("cold run recorded no misses")
	}
	if _, err := os.Stat(file); err != nil {
		t.Fatalf("cache file not saved: %v", err)
	}

	warm := run()
	if warm.CacheMisses != 0 {
		t.Errorf("warm-started run recomputed %d evaluations", warm.CacheMisses)
	}
	if !reflect.DeepEqual(cold.Front, warm.Front) {
		t.Error("warm-started front differs from cold run")
	}
}
