// Package driver runs a set of analyzers over loaded packages, applies
// //unicolint:allow suppressions, and produces deterministic, sorted
// results. Both cmd/unicolint and the analysistest harness run analyzers
// through this package, so suppression semantics are identical in tests and
// in CI.
package driver

import (
	"fmt"
	"go/token"
	"sort"

	"unico/lint/analysis"
	"unico/lint/load"
	"unico/lint/suppress"
)

// MalformedAnalyzer is the pseudo-analyzer name under which broken
// suppression directives are reported. It cannot be suppressed.
const MalformedAnalyzer = "unicolint"

// Diag is one resolved diagnostic.
type Diag struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// Suppressed pairs a diagnostic with the allow that silenced it.
type Suppressed struct {
	Diag   Diag
	Reason string
}

// Result is the outcome of one run over one or more packages.
type Result struct {
	// Diags are the unsuppressed diagnostics (including malformed allow
	// directives), sorted by position. Non-empty Diags means the build
	// fails the lint gate.
	Diags []Diag
	// Suppressed are diagnostics silenced by an allow, for -verbose.
	Suppressed []Suppressed
	// Unused are allows that silenced nothing, for -verbose.
	Unused []*suppress.Allow
	// Errors are analyzer execution errors (not diagnostics).
	Errors []error
}

// Run applies every analyzer to every package. Packages are processed in
// the order given (callers sort by import path), analyzers in the order
// given, so output and cross-package state (metricname's duplicate table)
// are deterministic.
func Run(fset *token.FileSet, pkgs []*load.Package, analyzers []*analysis.Analyzer) Result {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var res Result
	for _, pkg := range pkgs {
		ix, malformed := suppress.BuildIndex(fset, pkg.Files, known)
		for _, m := range malformed {
			res.Diags = append(res.Diags, Diag{
				Position: fset.Position(m.Pos),
				Analyzer: MalformedAnalyzer,
				Message:  m.Message,
			})
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Path:      pkg.ImportPath,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				diag := Diag{Position: pos, Analyzer: d.Analyzer, Message: d.Message}
				if !d.NoSuppress {
					if allow := ix.Match(pos.Filename, pos.Line, d.Analyzer); allow != nil {
						res.Suppressed = append(res.Suppressed, Suppressed{Diag: diag, Reason: allow.Reason})
						return
					}
				}
				res.Diags = append(res.Diags, diag)
			}
			if err := a.Run(pass); err != nil {
				res.Errors = append(res.Errors, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err))
			}
		}
		res.Unused = append(res.Unused, ix.Unused()...)
	}

	sort.SliceStable(res.Diags, func(i, j int) bool { return diagLess(res.Diags[i], res.Diags[j]) })
	sort.SliceStable(res.Suppressed, func(i, j int) bool { return diagLess(res.Suppressed[i].Diag, res.Suppressed[j].Diag) })
	return res
}

func diagLess(a, b Diag) bool {
	if a.Position.Filename != b.Position.Filename {
		return a.Position.Filename < b.Position.Filename
	}
	if a.Position.Line != b.Position.Line {
		return a.Position.Line < b.Position.Line
	}
	if a.Position.Column != b.Position.Column {
		return a.Position.Column < b.Position.Column
	}
	return a.Analyzer < b.Analyzer
}
