package driver_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"unico/lint/analysis"
	"unico/lint/driver"
	"unico/lint/load"
)

// lineReporter flags every line containing the marker comment "// FLAG",
// giving the tests a deterministic fake analyzer.
func lineReporter(name string) *analysis.Analyzer {
	a := &analysis.Analyzer{Name: name, Doc: "test analyzer"}
	a.Run = func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.Contains(c.Text, "FLAG") {
						pass.Reportf(c.Pos(), "flagged line")
					}
				}
			}
		}
		return nil
	}
	return a
}

func parsePkg(t *testing.T, src string) (*token.FileSet, *load.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, &load.Package{ImportPath: "p", Files: []*ast.File{f}}
}

func TestSuppressionFiltersAndRecordsReason(t *testing.T) {
	fset, pkg := parsePkg(t, `package p

func f() {
	_ = 1 // FLAG
	_ = 2 // FLAG unicolint:allow? no: separate comment below
	//unicolint:allow fake documented reason here
	_ = 3 // FLAG
}
`)
	res := driver.Run(fset, []*load.Package{pkg}, []*analysis.Analyzer{lineReporter("fake")})
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if len(res.Diags) != 2 {
		t.Fatalf("diags = %v, want 2 (lines 4 and 5)", res.Diags)
	}
	if len(res.Suppressed) != 1 {
		t.Fatalf("suppressed = %v, want 1 (line 7)", res.Suppressed)
	}
	if res.Suppressed[0].Reason != "documented reason here" {
		t.Errorf("reason = %q", res.Suppressed[0].Reason)
	}
	if res.Diags[0].Position.Line != 4 || res.Diags[1].Position.Line != 5 {
		t.Errorf("diag lines = %d,%d want 4,5", res.Diags[0].Position.Line, res.Diags[1].Position.Line)
	}
}

func TestMalformedDirectiveIsADiagnostic(t *testing.T) {
	fset, pkg := parsePkg(t, `package p

//unicolint:allow fake
func f() {}
`)
	res := driver.Run(fset, []*load.Package{pkg}, []*analysis.Analyzer{lineReporter("fake")})
	if len(res.Diags) != 1 {
		t.Fatalf("diags = %v, want the malformed-directive diagnostic", res.Diags)
	}
	if res.Diags[0].Analyzer != driver.MalformedAnalyzer {
		t.Errorf("analyzer = %q, want %q", res.Diags[0].Analyzer, driver.MalformedAnalyzer)
	}
}

func TestNoSuppressDiagnosticsSurviveAnAllow(t *testing.T) {
	noSup := &analysis.Analyzer{Name: "fake", Doc: "unsuppressable test analyzer"}
	noSup.Run = func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.Contains(c.Text, "FLAG") {
						pass.ReportNoSuppress(c.Pos(), "cannot be silenced")
					}
				}
			}
		}
		return nil
	}
	fset, pkg := parsePkg(t, `package p

func f() {
	//unicolint:allow fake an allow that must not work FLAG
}
`)
	res := driver.Run(fset, []*load.Package{pkg}, []*analysis.Analyzer{noSup})
	if len(res.Diags) != 1 || res.Diags[0].Message != "cannot be silenced" {
		t.Fatalf("diags = %v, want the unsuppressable diagnostic", res.Diags)
	}
	if len(res.Suppressed) != 0 {
		t.Errorf("suppressed = %v, want none", res.Suppressed)
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	fset, pkgB := parsePkg(t, "package b\n\nfunc g() {\n\t_ = 1 // FLAG\n}\n")
	// Two files in one fset; "a.go" parsed second must still sort first.
	f2, err := parser.ParseFile(fset, "a.go", "package b\n\nfunc h() {\n\t_ = 2 // FLAG\n}\n", parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkgB.Files = append(pkgB.Files, f2)
	res := driver.Run(fset, []*load.Package{pkgB}, []*analysis.Analyzer{lineReporter("fake")})
	if len(res.Diags) != 2 {
		t.Fatalf("diags = %v", res.Diags)
	}
	if res.Diags[0].Position.Filename != "a.go" || res.Diags[1].Position.Filename != "p.go" {
		t.Errorf("not sorted by file: %v", res.Diags)
	}
}
