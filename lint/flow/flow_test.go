package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"unico/lint/cfg"
)

func parseBody(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "snippet.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return cfg.FuncGraph(fn)
}

// callTransfer gens bit 0 at calls named "gen" and kills it at calls named
// "kill" — the minimal lock-shaped problem.
func callTransfer(n ast.Node, facts Set) {
	name := callName(n)
	switch name {
	case "gen":
		facts.Add(0)
	case "kill":
		facts.Remove(0)
	}
}

func callName(n ast.Node) string {
	var call *ast.CallExpr
	switch n := n.(type) {
	case *ast.ExprStmt:
		if c, ok := n.X.(*ast.CallExpr); ok {
			call = c
		}
	case *ast.CallExpr:
		call = n
	}
	if call == nil {
		return ""
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func TestMayFact(t *testing.T) {
	cases := []struct {
		name   string
		body   string
		atExit bool // bit 0 may hold at exit
	}{
		{"gen then kill", "gen()\nkill()", false},
		{"gen only", "gen()", true},
		{"gen on one branch", "if c() {\ngen()\n}", true},
		{"killed on both branches", "gen()\nif c() {\nkill()\n} else {\nkill()\n}", false},
		{"killed on one branch only", "gen()\nif c() {\nkill()\n}", true},
		{"early return skips kill", "gen()\nif c() {\nreturn\n}\nkill()", true},
		{"loop body gen escapes", "for i := 0; i < 3; i++ {\ngen()\n}", true},
		{"loop body gen+kill clean", "for i := 0; i < 3; i++ {\ngen()\nkill()\n}", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := parseBody(t, tc.body)
			sol := Forward(g, 1, May, NewSet(1), callTransfer)
			if got := sol.AtExit(g).Has(0); got != tc.atExit {
				t.Errorf("at exit: may-hold = %v, want %v", got, tc.atExit)
			}
		})
	}
}

func TestMustFact(t *testing.T) {
	cases := []struct {
		name   string
		body   string
		atExit bool // bit 0 must hold at exit
	}{
		{"gen on all paths", "gen()", true},
		{"gen on one branch", "if c() {\ngen()\n}", false},
		{"gen on both branches", "if c() {\ngen()\n} else {\ngen()\n}", true},
		{"gen before branch", "gen()\nif c() {\nwork()\n}", true},
		{"killed on one branch", "gen()\nif c() {\nkill()\n}", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := parseBody(t, tc.body)
			sol := Forward(g, 1, Must, NewSet(1), callTransfer)
			if got := sol.AtExit(g).Has(0); got != tc.atExit {
				t.Errorf("at exit: must-hold = %v, want %v", got, tc.atExit)
			}
		})
	}
}

// TestWalkSeesFactsBeforeNode pins Walk's contract: the set passed to the
// visitor is the state immediately before the node executes.
func TestWalkSeesFactsBeforeNode(t *testing.T) {
	g := parseBody(t, "gen()\nprobe()\nkill()\nprobe()")
	sol := Forward(g, 1, May, NewSet(1), callTransfer)
	var got []bool
	sol.Walk(g, func(n ast.Node, before Set) {
		if callName(n) == "probe" {
			got = append(got, before.Has(0))
		}
	})
	if len(got) != 2 || got[0] != true || got[1] != false {
		t.Errorf("probe facts = %v, want [true false]", got)
	}
}

// TestWalkSkipsUnreachable: facts in dead code must not reach the visitor,
// or analyzers would report on unreachable paths.
func TestWalkSkipsUnreachable(t *testing.T) {
	g := parseBody(t, "return\ngen()\nprobe()")
	sol := Forward(g, 1, May, NewSet(1), callTransfer)
	sol.Walk(g, func(n ast.Node, before Set) {
		if callName(n) == "probe" {
			t.Error("visited a probe in unreachable code")
		}
	})
}

func TestLoopFixpoint(t *testing.T) {
	// A fact genned in iteration 1 must be visible at the loop head in
	// iteration 2 — the back-edge must participate in the fixpoint.
	g := parseBody(t, "for i := 0; i < 3; i++ {\nprobe()\ngen()\n}")
	sol := Forward(g, 1, May, NewSet(1), callTransfer)
	seen := false
	sol.Walk(g, func(n ast.Node, before Set) {
		if callName(n) == "probe" && before.Has(0) {
			seen = true
		}
	})
	if !seen {
		t.Error("fact genned in the loop body did not flow around the back-edge to the probe")
	}
}

func TestSetOps(t *testing.T) {
	s := NewSet(130)
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if got := s.Bits(); len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 129 {
		t.Errorf("Bits() = %v, want [0 64 129]", got)
	}
	o := s.Clone()
	o.Remove(64)
	if s.Equal(o) {
		t.Error("Clone is not independent")
	}
	if !s.Has(64) || o.Has(64) {
		t.Error("Remove affected the wrong set")
	}
	u := NewSet(130)
	if changed := u.Union(s); !changed || !u.Equal(s) {
		t.Error("Union into empty should equal source and report change")
	}
	if changed := u.Intersect(o); !changed || u.Has(64) {
		t.Error("Intersect should drop bit 64 and report change")
	}
	if !NewSet(10).Empty() || s.Empty() {
		t.Error("Empty() wrong")
	}
}
