// Package flow is a small forward-dataflow framework over unico/lint/cfg
// graphs: a bit-vector lattice, per-node gen/kill transfer functions, and a
// worklist solver that iterates to a fixpoint.
//
// Facts are bits in a Set. An analyzer assigns one bit per interesting
// thing (a lock acquisition site, a written file variable), describes how
// each CFG node changes the facts (Transfer), and picks a join: May (union
// over predecessors — "does some path establish the fact") or Must
// (intersection — "do all paths establish it"). The solver returns the
// fact set at the entry of every block; Walk replays the transfer function
// inside a block to visit the fact set immediately before every node,
// which is where analyzers do their reporting.
//
// The framework is deliberately minimal: forward direction only, finite
// bit-vector domains only. That covers every analyzer unicolint ships
// (ctxflow, goleak, locksafe, durerr) while keeping the solver obviously
// terminating — transfer functions are monotone gen/kill, so the fixpoint
// exists and the worklist visits each block O(bits) times.
package flow

import (
	"go/ast"
	"math/bits"

	"unico/lint/cfg"
)

// Set is a bit vector of dataflow facts.
type Set []uint64

// NewSet returns an empty set able to hold n bits.
func NewSet(n int) Set { return make(Set, (n+63)/64) }

// Has reports whether bit i is set.
func (s Set) Has(i int) bool {
	w := i / 64
	return w < len(s) && s[w]&(1<<(i%64)) != 0
}

// Add sets bit i.
func (s Set) Add(i int) { s[i/64] |= 1 << (i % 64) }

// Remove clears bit i.
func (s Set) Remove(i int) {
	w := i / 64
	if w < len(s) {
		s[w] &^= 1 << (i % 64)
	}
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Union merges o into s, reporting whether s changed.
func (s Set) Union(o Set) bool {
	changed := false
	for i := range s {
		if i >= len(o) {
			break
		}
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Intersect keeps only bits present in both, reporting whether s changed.
func (s Set) Intersect(o Set) bool {
	changed := false
	for i := range s {
		var w uint64
		if i < len(o) {
			w = o[i]
		}
		n := s[i] & w
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Equal reports set equality.
func (s Set) Equal(o Set) bool {
	for i := range s {
		var w uint64
		if i < len(o) {
			w = o[i]
		}
		if s[i] != w {
			return false
		}
	}
	return true
}

// Empty reports whether no bit is set.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Bits returns the indices of the set bits, ascending.
func (s Set) Bits() []int {
	var out []int
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &^= 1 << b
		}
	}
	return out
}

// Join selects the confluence operator.
type Join int

const (
	// May joins with union: a fact holds if it holds on some path.
	May Join = iota
	// Must joins with intersection: a fact holds only on all paths.
	Must
)

// Transfer mutates the fact set in place to reflect executing node n.
// It is called once per node during solving and again during Walk, so it
// must be deterministic and depend only on (n, facts).
type Transfer func(n ast.Node, facts Set)

// Solution holds per-block entry facts.
type Solution struct {
	NumBits  int
	In       map[*cfg.Block]Set
	transfer Transfer
}

// Forward solves a forward dataflow problem: boundary is the fact set at
// function entry, tr the per-node transfer. For Must problems the initial
// out-sets of unvisited blocks are "all facts" (top), as intersection
// requires.
func Forward(g *cfg.Graph, numBits int, join Join, boundary Set, tr Transfer) *Solution {
	sol := &Solution{NumBits: numBits, In: map[*cfg.Block]Set{}, transfer: tr}

	top := NewSet(numBits)
	if join == Must {
		for i := 0; i < numBits; i++ {
			top.Add(i)
		}
	}
	out := map[*cfg.Block]Set{}
	for _, b := range g.Blocks {
		sol.In[b] = top.Clone()
		out[b] = top.Clone()
	}
	sol.In[g.Entry] = boundary.Clone()

	// Worklist seeded in block order (construction order approximates
	// reverse postorder well enough; the fixpoint is order-independent).
	work := make([]*cfg.Block, 0, len(g.Blocks))
	inWork := make([]bool, len(g.Blocks))
	push := func(b *cfg.Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	for _, b := range g.Blocks {
		push(b)
	}

	apply := func(b *cfg.Block) Set {
		facts := sol.In[b].Clone()
		for _, n := range b.Nodes {
			tr(n, facts)
		}
		return facts
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		// Recompute In from predecessors (entry keeps its boundary).
		if b != g.Entry {
			var in Set
			if len(b.Preds) == 0 {
				// Unreachable block: May bottom / Must top; either way no
				// information flows out of it that wasn't already there.
				in = top.Clone()
				if join == May {
					in = NewSet(numBits)
				}
			} else {
				in = out[b.Preds[0]].Clone()
				for _, p := range b.Preds[1:] {
					if join == May {
						in.Union(out[p])
					} else {
						in.Intersect(out[p])
					}
				}
			}
			sol.In[b] = in
		}
		newOut := apply(b)
		if !newOut.Equal(out[b]) {
			out[b] = newOut
			for _, s := range b.Succs {
				push(s)
			}
		}
	}
	return sol
}

// Walk replays the transfer function over every block reachable from
// entry, calling visit with the fact set in force immediately before each
// node. The set passed to visit is reused between calls; clone it to keep.
func (s *Solution) Walk(g *cfg.Graph, visit func(n ast.Node, before Set)) {
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		facts := s.In[b].Clone()
		for _, n := range b.Nodes {
			visit(n, facts)
			s.transfer(n, facts)
		}
	}
}

// AtExit returns the fact set at the entry of the exit block — the facts
// that hold when the function terminates.
func (s *Solution) AtExit(g *cfg.Graph) Set { return s.In[g.Exit] }
