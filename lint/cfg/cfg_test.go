package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses a function body snippet and returns its graph.
func parseBody(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "snippet.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return FuncGraph(fn)
}

// hasBackEdge reports whether the graph has a cycle reachable from entry —
// the shape every loop (and backward goto) leaves behind.
func hasBackEdge(g *Graph) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Blocks))
	var visit func(*Block) bool
	visit = func(b *Block) bool {
		color[b.Index] = gray
		for _, s := range b.Succs {
			switch color[s.Index] {
			case gray:
				return true
			case white:
				if visit(s) {
					return true
				}
			}
		}
		color[b.Index] = black
		return false
	}
	return visit(g.Entry)
}

func TestGraphShapes(t *testing.T) {
	cases := []struct {
		name string
		body string

		exitReachable bool
		backEdge      bool
		defers        int
	}{
		{
			name:          "straight line",
			body:          "x := 1\n_ = x",
			exitReachable: true,
		},
		{
			name:          "if else join",
			body:          "if c() {\na()\n} else {\nb()\n}\nd()",
			exitReachable: true,
		},
		{
			name:          "for with cond has back edge and exit",
			body:          "for i := 0; i < 10; i++ {\nwork(i)\n}",
			exitReachable: true,
			backEdge:      true,
		},
		{
			name:          "infinite for has no exit",
			body:          "for {\nwork(0)\n}",
			exitReachable: false,
			backEdge:      true,
		},
		{
			name:          "infinite for with break exits",
			body:          "for {\nif done() {\nbreak\n}\n}",
			exitReachable: true,
			backEdge:      true,
		},
		{
			name:          "infinite for with return exits",
			body:          "for {\nif done() {\nreturn\n}\n}",
			exitReachable: true,
			backEdge:      true,
		},
		{
			name:          "range has back edge and natural exit",
			body:          "for _, v := range xs() {\nwork(v)\n}",
			exitReachable: true,
			backEdge:      true,
		},
		{
			name:          "range continue keeps back edge",
			body:          "for _, v := range xs() {\nif v == nil {\ncontinue\n}\nwork(v)\n}",
			exitReachable: true,
			backEdge:      true,
		},
		{
			name: "labeled break leaves outer loop",
			body: `outer:
for {
	for {
		if done() {
			break outer
		}
	}
}`,
			exitReachable: true,
			backEdge:      true,
		},
		{
			name: "labeled continue targets outer loop",
			body: `outer:
for i := 0; i < 3; i++ {
	for {
		continue outer
	}
}`,
			exitReachable: true,
			backEdge:      true,
		},
		{
			name: "unlabeled break in inner loop does not exit outer",
			body: `for {
	for {
		break
	}
}`,
			exitReachable: false,
			backEdge:      true,
		},
		{
			name:          "select with default falls through",
			body:          "select {\ncase v := <-ch():\nwork(v)\ndefault:\n}\nafter()",
			exitReachable: true,
		},
		{
			name:          "empty select blocks forever",
			body:          "select {}",
			exitReachable: false,
		},
		{
			name: "for select with done return exits",
			body: `for {
	select {
	case <-done():
		return
	case v := <-ch():
		work(v)
	}
}`,
			exitReachable: true,
			backEdge:      true,
		},
		{
			name: "for select without any return never exits",
			body: `for {
	select {
	case v := <-ch():
		work(v)
	case <-tick():
		work(nil)
	}
}`,
			exitReachable: false,
			backEdge:      true,
		},
		{
			name: "break inside select leaves the select not the loop",
			body: `for {
	select {
	case <-ch():
		break
	}
}`,
			exitReachable: false,
			backEdge:      true,
		},
		{
			name: "labeled break from select leaves the loop",
			body: `loop:
for {
	select {
	case <-ch():
		break loop
	}
}`,
			// The only case always breaks, so the loop cannot iterate
			// twice: exit is reachable and there is no reachable cycle.
			exitReachable: true,
			backEdge:      false,
		},
		{
			name: "labeled break from one select case keeps the other's cycle",
			body: `loop:
for {
	select {
	case <-done():
		break loop
	case <-ch():
		work(nil)
	}
}`,
			exitReachable: true,
			backEdge:      true,
		},
		{
			name:          "switch without default has fallthrough edge past cases",
			body:          "switch v() {\ncase 1:\na()\ncase 2:\nb()\n}\nafter()",
			exitReachable: true,
		},
		{
			name: "switch with default and returns in all cases",
			body: `switch v() {
case 1:
	return
default:
	return
}`,
			exitReachable: true,
		},
		{
			name:          "panic edges to exit",
			body:          "if bad() {\npanic(\"boom\")\n}\nok()",
			exitReachable: true,
		},
		{
			name:          "unconditional panic still reaches exit",
			body:          "panic(\"always\")",
			exitReachable: true,
		},
		{
			name:          "os.Exit terminates like return",
			body:          "os.Exit(1)",
			exitReachable: true,
		},
		{
			name:          "defer is recorded",
			body:          "defer cleanup()\nwork(0)",
			exitReachable: true,
			defers:        1,
		},
		{
			name:          "defer ordering is source order",
			body:          "defer first()\ndefer second()\ndefer third()",
			exitReachable: true,
			defers:        3,
		},
		{
			name:          "goto forward",
			body:          "if c() {\ngoto out\n}\nwork(0)\nout:\nafter()",
			exitReachable: true,
		},
		{
			name:          "goto backward makes a loop",
			body:          "again:\nwork(0)\ngoto again",
			exitReachable: false,
			backEdge:      true,
		},
		{
			name:          "type switch",
			body:          "switch x := v().(type) {\ncase int:\nwork(x)\ndefault:\n}",
			exitReachable: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := parseBody(t, tc.body)
			if got := g.ExitReachable(); got != tc.exitReachable {
				t.Errorf("ExitReachable = %v, want %v\ngraph:\n%s", got, tc.exitReachable, g)
			}
			if got := hasBackEdge(g); got != tc.backEdge {
				t.Errorf("hasBackEdge = %v, want %v\ngraph:\n%s", got, tc.backEdge, g)
			}
			if got := len(g.Defers); got != tc.defers {
				t.Errorf("len(Defers) = %d, want %d", got, tc.defers)
			}
		})
	}
}

// TestDeferOrder pins the source-order contract of Graph.Defers: analyzers
// that model deferred unlocks rely on scanning them in registration order.
func TestDeferOrder(t *testing.T) {
	g := parseBody(t, "defer first()\nif c() {\ndefer second()\n}\ndefer third()")
	if len(g.Defers) != 3 {
		t.Fatalf("got %d defers, want 3", len(g.Defers))
	}
	names := make([]string, 0, 3)
	for _, d := range g.Defers {
		call := d.Call.Fun.(*ast.Ident)
		names = append(names, call.Name)
	}
	if got := strings.Join(names, ","); got != "first,second,third" {
		t.Errorf("defer order = %s, want first,second,third", got)
	}
}

// TestPredsMirrorSuccs checks the back-edge lists are consistent.
func TestPredsMirrorSuccs(t *testing.T) {
	g := parseBody(t, "for i := 0; i < 3; i++ {\nif c() {\ncontinue\n}\nwork(i)\n}")
	fwd := map[[2]int]bool{}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			fwd[[2]int{b.Index, s.Index}] = true
		}
	}
	back := map[[2]int]bool{}
	for _, b := range g.Blocks {
		for _, p := range b.Preds {
			back[[2]int{p.Index, b.Index}] = true
		}
	}
	if len(fwd) != len(back) {
		t.Fatalf("succ edges %d != pred edges %d\ngraph:\n%s", len(fwd), len(back), g)
	}
	for e := range fwd {
		if !back[e] {
			t.Errorf("edge %v present in Succs, missing in Preds", e)
		}
	}
}

// TestNestedFuncLitNotFlattened: a function literal's body must not leak
// into the enclosing graph (its return would otherwise edge to the outer
// exit).
func TestNestedFuncLitNotFlattened(t *testing.T) {
	g := parseBody(t, "f := func() {\nreturn\n}\nf()\nfor {\n}")
	if g.ExitReachable() {
		t.Errorf("outer infinite loop should make exit unreachable even with a returning func literal\ngraph:\n%s", g)
	}
}
