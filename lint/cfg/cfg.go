// Package cfg builds intraprocedural control-flow graphs from go/ast
// function bodies, using only the standard library.
//
// The upstream golang.org/x/tools/go/cfg package does the same job for the
// go/analysis ecosystem; unicolint cannot depend on it (the repo rule is
// stdlib only), so this is a small re-implementation shaped for the
// dataflow analyzers in unico/lint/checkers. A Graph is a set of basic
// Blocks connected by successor edges:
//
//   - statements and the expressions that control branches are appended to
//     Block.Nodes in execution order;
//   - if/for/range/switch/type-switch/select/goto and labeled
//     break/continue produce the expected edges, including loop back-edges
//     and the fall-through edge of a select with a default clause;
//   - return statements, panic calls and calls that never return
//     (os.Exit, log.Fatal*, runtime.Goexit) edge to the synthetic Exit
//     block, so "the function can terminate" is exactly "Exit is reachable
//     from Entry";
//   - defer statements are recorded in source order on Graph.Defers in
//     addition to appearing as ordinary nodes, because deferred calls run
//     on every path that passed their registration — including panic
//     unwinding — which release-analyses must model separately.
//
// The graph is intraprocedural and syntactic: it does not follow calls and
// treats every non-terminating call as returning normally. That is the
// right precision for the lint analyzers built on top: they want "is there
// a path", not "is the path feasible".
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block // synthetic; reached by return, panic, and falling off the end
	Blocks []*Block

	// Defers lists every defer statement in the body, outermost function
	// literal only, in source order. Deferred calls execute on all paths
	// that executed the registration, including panics.
	Defers []*ast.DeferStmt
}

// Block is one basic block: a maximal run of nodes with a single entry and
// single exit point.
type Block struct {
	Index int
	Kind  string // diagnostic label: "entry", "if.then", "for.body", ...
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block

	reachOnce bool // scratch for Reachable
}

// New builds the graph for one function body. A nil body (declaration
// without body) yields a trivial entry→exit graph.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	cur := b.g.Entry
	if body != nil {
		cur = b.stmts(cur, body.List)
	}
	b.edge(cur, b.g.Exit) // falling off the end returns
	b.resolveGotos()
	b.prune()
	for _, blk := range b.g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.g
}

// FuncGraph builds the graph for a function declaration.
func FuncGraph(fn *ast.FuncDecl) *Graph { return New(fn.Body) }

// Reachable returns the set of blocks reachable from Entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// ExitReachable reports whether any path from Entry reaches Exit — that is,
// whether the function can terminate (return, panic, or fall off the end).
func (g *Graph) ExitReachable() bool {
	return g.Reachable()[g.Exit]
}

// String renders the graph in a stable, compact text form for tests:
// one line per block, "index kind -> succ,succ".
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%d %s ->", b.Index, b.Kind)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " %d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// builder carries the state of one graph construction.
type builder struct {
	g *Graph

	// break/continue resolution. Each enclosing breakable/continuable
	// construct pushes a frame; labeled statements record the label.
	frames []frame

	// goto resolution: label → target block, and pending jumps.
	labels  map[string]*Block
	pending []pendingGoto
}

type frame struct {
	label   string // "" for unlabeled constructs
	breakTo *Block
	contTo  *Block // nil for switch/select frames
	isLoop  bool
}

type pendingGoto struct {
	from  *Block
	label string
	pos   token.Pos
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// stmts threads a statement list through the graph, returning the block
// control falls out of (which may be a fresh unreachable block after a
// terminating statement).
func (b *builder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		then := b.newBlock("if.then")
		b.edge(cur, then)
		after := b.newBlock("if.done")
		out := b.stmts(then, s.Body.List)
		b.edge(out, after)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cur, els)
			out := b.stmt(els, s.Else)
			b.edge(out, after)
		} else {
			b.edge(cur, after)
		}
		return after

	case *ast.ForStmt:
		return b.forStmt(cur, s, "")

	case *ast.RangeStmt:
		return b.rangeStmt(cur, s, "")

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return b.switchStmt(cur, s, "")

	case *ast.SelectStmt:
		return b.selectStmt(cur, s, "")

	case *ast.LabeledStmt:
		// The label names the following statement; loops and switches
		// consume it for labeled break/continue, anything else becomes a
		// goto target.
		target := b.newBlock("label." + s.Label.Name)
		b.edge(cur, target)
		if b.labels == nil {
			b.labels = map[string]*Block{}
		}
		b.labels[s.Label.Name] = target
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt:
			return b.forStmt(target, inner, s.Label.Name)
		case *ast.RangeStmt:
			return b.rangeStmt(target, inner, s.Label.Name)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			return b.switchStmt(target, inner, s.Label.Name)
		case *ast.SelectStmt:
			return b.selectStmt(target, inner, s.Label.Name)
		default:
			return b.stmt(target, s.Stmt)
		}

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(label, false); t != nil {
				cur.Nodes = append(cur.Nodes, s)
				b.edge(cur, t)
				return b.newBlock("unreachable")
			}
		case token.CONTINUE:
			if t := b.branchTarget(label, true); t != nil {
				cur.Nodes = append(cur.Nodes, s)
				b.edge(cur, t)
				return b.newBlock("unreachable")
			}
		case token.GOTO:
			cur.Nodes = append(cur.Nodes, s)
			b.pending = append(b.pending, pendingGoto{from: cur, label: label, pos: s.Pos()})
			return b.newBlock("unreachable")
		}
		// Malformed branch (break outside loop): treat as no-op so a
		// broken fixture degrades instead of panicking the analyzer.
		cur.Nodes = append(cur.Nodes, s)
		return cur

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.g.Exit)
		return b.newBlock("unreachable")

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		cur.Nodes = append(cur.Nodes, s)
		return cur

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && Terminates(call) {
			b.edge(cur, b.g.Exit)
			return b.newBlock("unreachable")
		}
		return cur

	case *ast.GoStmt:
		// The goroutine body is a separate graph (built by analyzers that
		// care); in this function's graph the go statement is one node.
		cur.Nodes = append(cur.Nodes, s)
		return cur

	default:
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

func (b *builder) forStmt(cur *Block, s *ast.ForStmt, label string) *Block {
	if s.Init != nil {
		cur = b.stmt(cur, s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(cur, head)
	after := b.newBlock("for.done")
	body := b.newBlock("for.body")
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		b.edge(head, body)
		b.edge(head, after)
	} else {
		// `for { ... }`: the only way past it is break/return inside.
		b.edge(head, body)
	}
	// continue target: the post statement if present, else the head.
	contTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		b.edge(b.stmt(post, s.Post), head)
		contTo = post
	}
	b.frames = append(b.frames, frame{label: label, breakTo: after, contTo: contTo, isLoop: true})
	out := b.stmts(body, s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.edge(out, contTo) // back-edge (via post when present)
	return after
}

func (b *builder) rangeStmt(cur *Block, s *ast.RangeStmt, label string) *Block {
	head := b.newBlock("range.head")
	head.Nodes = append(head.Nodes, s.X)
	b.edge(cur, head)
	after := b.newBlock("range.done")
	body := b.newBlock("range.body")
	b.edge(head, body)
	b.edge(head, after) // ranges terminate (a ranged channel, when closed)
	b.frames = append(b.frames, frame{label: label, breakTo: after, contTo: head, isLoop: true})
	out := b.stmts(body, s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.edge(out, head) // back-edge
	return after
}

// switchStmt handles both expression and type switches (s is one of
// *ast.SwitchStmt, *ast.TypeSwitchStmt).
func (b *builder) switchStmt(cur *Block, s ast.Stmt, label string) *Block {
	var body *ast.BlockStmt
	switch sw := s.(type) {
	case *ast.SwitchStmt:
		if sw.Init != nil {
			cur = b.stmt(cur, sw.Init)
		}
		if sw.Tag != nil {
			cur.Nodes = append(cur.Nodes, sw.Tag)
		}
		body = sw.Body
	case *ast.TypeSwitchStmt:
		if sw.Init != nil {
			cur = b.stmt(cur, sw.Init)
		}
		cur.Nodes = append(cur.Nodes, sw.Assign)
		body = sw.Body
	}
	after := b.newBlock("switch.done")
	b.frames = append(b.frames, frame{label: label, breakTo: after})

	// Build case bodies first so fallthrough can edge to the next body.
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		kind := "case"
		if cc.List == nil {
			kind = "default"
			hasDefault = true
		}
		bodies[i] = b.newBlock("switch." + kind)
		b.edge(cur, bodies[i])
		// Case guard expressions are evaluated in the dispatch block.
		for _, e := range cc.List {
			cur.Nodes = append(cur.Nodes, e)
		}
	}
	if !hasDefault {
		b.edge(cur, after) // no case matched
	}
	for i, cc := range clauses {
		out := b.stmts(bodies[i], cc.Body)
		if ft := fallsThrough(cc.Body); ft && i+1 < len(bodies) {
			b.edge(out, bodies[i+1])
		} else {
			b.edge(out, after)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	return after
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) selectStmt(cur *Block, s *ast.SelectStmt, label string) *Block {
	cur.Nodes = append(cur.Nodes, s) // the select itself is the blocking point
	after := b.newBlock("select.done")
	b.frames = append(b.frames, frame{label: label, breakTo: after})
	any := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		b.edge(cur, blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		out := b.stmts(blk, cc.Body)
		b.edge(out, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !any {
		// `select {}` blocks forever: no successors, Exit unreachable
		// through here.
		return b.newBlock("unreachable")
	}
	return after
}

// branchTarget resolves a break (wantContinue=false) or continue
// (wantContinue=true) to its destination block.
func (b *builder) branchTarget(label string, wantContinue bool) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if wantContinue && !f.isLoop {
			continue // continue binds only to loops, never switch/select
		}
		if label == "" || f.label == label {
			if wantContinue {
				return f.contTo
			}
			return f.breakTo
		}
	}
	return nil
}

func (b *builder) resolveGotos() {
	for _, p := range b.pending {
		if t, ok := b.labels[p.label]; ok {
			b.edge(p.from, t)
		} else {
			// Undefined label: the package does not compile; degrade to an
			// edge to Exit so analysis still terminates.
			b.edge(p.from, b.g.Exit)
		}
	}
}

// prune drops empty unreachable scratch blocks (created after terminating
// statements) that gained no nodes and no successors, and renumbers. Entry
// and Exit always survive.
func (b *builder) prune() {
	kept := b.g.Blocks[:0]
	for _, blk := range b.g.Blocks {
		if blk != b.g.Entry && blk != b.g.Exit && len(blk.Nodes) == 0 && len(blk.Succs) == 0 && blk.Kind == "unreachable" {
			continue
		}
		blk.Index = len(kept)
		kept = append(kept, blk)
	}
	b.g.Blocks = kept
}

// Terminates reports whether a call expression never returns to its caller:
// panic, os.Exit, log.Fatal*, runtime.Goexit, (*testing.T).Fatal* are the
// forms that matter in this repo. It is purely syntactic — a local function
// named "panic" would fool it — which is acceptable for lint precision.
func Terminates(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"):
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		}
	}
	return false
}
