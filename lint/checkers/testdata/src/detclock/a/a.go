// Package a exercises the detclock analyzer: every wall-clock read and
// every use of the global rand source fires; simulated/seeded forms stay
// silent; a documented allow suppresses.
package a

import (
	"math/rand"
	"time"
)

func violations() {
	_ = time.Now()                  // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)    // want `time\.Sleep reads the wall clock`
	_ = time.Since(time.Time{})     // want `time\.Since reads the wall clock`
	_ = time.NewTimer(time.Second)  // want `time\.NewTimer reads the wall clock`
	_ = time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
	<-time.After(time.Second)       // want `time\.After reads the wall clock`
	_ = rand.Intn(10)               // want `rand\.Intn uses the global rand source`
	_ = rand.Float64()              // want `rand\.Float64 uses the global rand source`
	rand.Shuffle(0, nil)            // want `rand\.Shuffle uses the global rand source`
}

// A bare reference (no call) is still a wall-clock dependency.
var nowFunc = time.Now // want `time\.Now reads the wall clock`

func seededIsLegal(seed int64) {
	r := rand.New(rand.NewSource(seed))
	_ = r.Intn(10)
	_ = r.Float64()
	var src rand.Source64
	_ = src
	d := 3 * time.Second // duration arithmetic does not read the clock
	_ = d
	_ = time.RFC3339 // neither do formatting constants
}

func documentedAllow() {
	_ = time.Now() //unicolint:allow detclock fixture proves a documented allow silences the diagnostic
}

// shadowing: a local named time is not the time package.
func shadowed() {
	type clock struct{ Now func() int }
	time := clock{Now: func() int { return 0 }}
	_ = time.Now()
}
