// Package core carries a strict-package path segment: inside the
// deterministic search packages even a //unicolint:allow detclock comment
// is a violation, and the report it triggers cannot be suppressed.
package core

import "time"

func attemptToExcuse() {
	//unicolint:allow detclock trying to excuse wall clock in a strict package // want `suppression of detclock is not permitted`
	_ = time.Now()
}
