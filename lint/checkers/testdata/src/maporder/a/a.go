// Package a exercises maporder: accumulating or writing inside a map range
// fires unless the collect-sort-iterate idiom is completed.
package a

import (
	"fmt"
	"sort"
)

func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append inside range over map`
	}
	return keys
}

func sortedIdiom(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortDotSortIdiom(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Sort(sort.Float64Slice(vals))
	return vals
}

func printsInsideRange(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `Println inside range over map`
	}
}

func writesInsideRange(m map[string]int, buf interface{ WriteString(string) (int, error) }) {
	for k := range m {
		buf.WriteString(k) // want `WriteString inside range over map`
	}
}

func sliceRangeIsFine(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v)
	}
	return out
}

func orderFreeBodyIsFine(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func documentedAllow(m map[string]int) {
	for k := range m {
		fmt.Println(k) //unicolint:allow maporder fixture output where order genuinely does not matter
	}
}
