// Package dist mirrors internal/dist: the one sanctioned HTTP transport
// package is exempt from nodefaultclient, so nothing here fires.
package dist

import "net/http"

func sanctioned() {
	_, _ = http.Get("http://example.com")
	_ = http.DefaultClient
	_ = &http.Client{}
}
