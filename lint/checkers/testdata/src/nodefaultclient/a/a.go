// Package a exercises nodefaultclient: every http.DefaultClient ride-along
// and timeoutless client literal fires outside the dist package.
package a

import (
	"net/http"
	"time"
)

func violations() {
	_, _ = http.Get("http://example.com")    // want `http\.Get uses http\.DefaultClient`
	_, _ = http.Post("u", "text/plain", nil) // want `http\.Post uses http\.DefaultClient`
	_, _ = http.Head("u")                    // want `http\.Head uses http\.DefaultClient`
	_, _ = http.PostForm("u", nil)           // want `http\.PostForm uses http\.DefaultClient`
	_, _ = http.DefaultClient.Get("u")       // want `http\.DefaultClient has no timeout`
	_ = &http.Client{}                       // want `http\.Client literal without Timeout`
	_ = &http.Client{Transport: nil}         // want `http\.Client literal without Timeout`
	_ = http.Client{CheckRedirect: nil}      // want `http\.Client literal without Timeout`
}

func fine() {
	c := &http.Client{Timeout: 10 * time.Second}
	_ = c
	// Server-side types are not clients.
	_ = &http.Server{ReadTimeout: time.Second}
}

func documentedAllow() {
	_, _ = http.Get("http://example.com") //unicolint:allow nodefaultclient fixture proves the allow works here too
}
