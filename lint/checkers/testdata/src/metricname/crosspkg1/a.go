// Package crosspkg1 registers unico_cross_total first; crosspkg2 registers
// it again and must be flagged — the duplicate table spans packages.
package crosspkg1

import "telemetry"

func register() {
	telemetry.DefaultRegistry.Counter("unico_cross_total", "help", nil)
}
