// Package a exercises metricname: names must be unico_-prefixed snake-case
// string literals.
package a

import "telemetry"

var dynamic = "unico_dynamic_total"

func registrations(reg *telemetry.Registry) {
	telemetry.DefaultRegistry.Counter("unico_good_total", "help", nil)
	telemetry.DefaultRegistry.Gauge("unico_queue_depth", "help", nil)
	reg.Histogram("unico_latency_seconds", "help", nil, nil)

	// The distributed-tracing series follow the same contract.
	telemetry.DefaultRegistry.Counter("unico_trace_spans_total", "help", nil)
	telemetry.DefaultRegistry.Counter("unico_trace_orphans_total", "help", nil)
	reg.Histogram("unico_fleet_forward_seconds", "help", nil, nil)

	telemetry.DefaultRegistry.Counter("bad_prefix_total", "help", nil)        // want `does not match`
	telemetry.DefaultRegistry.Counter("unico_trace_Spans_total", "help", nil) // want `does not match`
	telemetry.DefaultRegistry.Counter("unico_CamelCase", "help", nil)         // want `does not match`
	telemetry.DefaultRegistry.Gauge("unico_", "help", nil)                    // want `does not match`
	telemetry.DefaultRegistry.Counter(dynamic, "help", nil)                   // want `must be a string literal`
	reg.Counter("unico_"+"concat_total", "help", nil)                         // want `must be a string literal`
}

// Methods of the same names on other types are not registrations.
type other struct{}

func (other) Counter(name string) int { return 0 }

func notARegistry(o other) {
	_ = o.Counter("whatever")
}
