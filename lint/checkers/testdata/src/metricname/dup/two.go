package dup

import "telemetry"

func second() {
	telemetry.DefaultRegistry.Counter("unico_dup_total", "duplicate", nil) // want `already registered`
}
