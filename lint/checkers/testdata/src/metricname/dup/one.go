// Package dup deliberately registers unico_dup_total twice, in two files,
// to prove duplicate detection spans the whole build rather than one file.
package dup

import "telemetry"

func first() {
	telemetry.DefaultRegistry.Counter("unico_dup_total", "first registration wins", nil)
}
