// Package crosspkg2 re-registers a metric crosspkg1 already owns.
package crosspkg2

import "telemetry"

func register() {
	telemetry.DefaultRegistry.Counter("unico_cross_total", "help", nil) // want `already registered`
}
