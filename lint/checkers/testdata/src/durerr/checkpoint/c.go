// Package checkpoint carries a persistence path segment, so durerr tracks
// every durability-relevant error here.
package checkpoint

import "os"

// Positive: a discarded Sync error is a lost write.
func syncDiscarded(path string) {
	f, _ := os.Create(path)
	f.Sync() // want `f\.Sync\(\) error discarded in syncDiscarded`
	f.Close()
}

// Positive: blanking the Sync error is still a discard.
func syncBlanked(f *os.File) {
	_ = f.Sync() // want `f\.Sync\(\) error explicitly discarded in syncBlanked`
}

// Positive: a discarded rename un-publishes the snapshot protocol.
func renameDiscarded(tmp, dst string) {
	os.Rename(tmp, dst) // want `os\.Rename error discarded in renameDiscarded`
}

func renameBlanked(tmp, dst string) {
	_ = os.Rename(tmp, dst) // want `os\.Rename error explicitly discarded in renameBlanked`
}

// Positive: closing a written file without ever syncing it discards the
// only error the OS may still be holding.
func closeUnsynced(path string, b []byte) {
	f, _ := os.Create(path)
	f.Write(b)
	f.Close() // want `f\.Close\(\) error discarded in closeUnsynced while the file may hold unsynced writes`
}

// Positive: a deferred close on a function that never syncs.
func deferCloseNeverSynced(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred f\.Close\(\) in deferCloseNeverSynced discards the close error`
	_, err = f.Write(b)
	return err
}

// Positive: OpenFile with write flags is a write-open.
func appendUnsynced(path string, b []byte) {
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.Write(b)
	f.Close() // want `f\.Close\(\) error discarded in appendUnsynced`
}

// Negative: the full checked protocol — sync checked, close checked.
func checkedProtocol(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Negative: the idiomatic defer-close backstop with a checked inline sync
// on the happy path; the defer only double-closes after success and only
// discards on paths that already failed.
func deferBackstop(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(b); err != nil {
		return err
	}
	return f.Sync()
}

// Negative: a bare close after a checked sync cannot lose a write error.
func closeAfterCheckedSync(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close()
	return nil
}

// Negative: read-only files owe nothing at close.
func readPath(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return buf, err
}

// Negative: an explicitly blanked close is an acknowledged cleanup discard.
func acknowledgedCleanup(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_ = f.Close()
	return os.Remove(path)
}
