// Package a sits outside the persistence packages: durerr does not apply.
// Non-durable output (reports, scratch files) may discard close errors.
package a

import "os"

func scratchFile(path string, b []byte) {
	f, _ := os.Create(path)
	f.Write(b)
	f.Sync()
	f.Close()
	os.Rename(path, path+".bak")
}
