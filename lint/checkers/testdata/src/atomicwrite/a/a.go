// Package a exercises atomicwrite's rename rule: renaming a file that was
// never Sync()'d in the same function can publish a torn artifact.
package a

import "os"

func renameWithoutSync(tmp, dst string) error {
	return os.Rename(tmp, dst) // want `os\.Rename without a prior Sync`
}

func renameWithSync(f *os.File, dst string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(f.Name(), dst)
}

func syncAfterRenameIsStillWrong(f *os.File, dst string) error {
	if err := os.Rename(f.Name(), dst); err != nil { // want `os\.Rename without a prior Sync`
		return err
	}
	return f.Sync()
}

// WriteFile outside the persistence packages is legal (non-durable output,
// test scaffolding and the like).
func writeFileHereIsFine(path string) error {
	return os.WriteFile(path, []byte("x"), 0o644)
}
