// Package checkpoint carries a persistence-package path segment, where
// os.WriteFile (truncate in place, no fsync) is banned outright.
package checkpoint

import "os"

func snapshot(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os\.WriteFile in persistence package`
}
