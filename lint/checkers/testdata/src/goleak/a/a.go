// Package a exercises goleak: every go statement needs a provable exit
// path in its body's control-flow graph.
package a

import (
	"context"
	"sync"
)

// Positive: a bare for/select with no returning case never terminates.
func leaksForever(ch chan int) {
	go func() { // want `goroutine literal has no exit path`
		for {
			select {
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// Positive: infinite loop without any break or return.
func leaksBusyLoop() {
	go func() { // want `goroutine literal has no exit path`
		for {
			step()
		}
	}()
}

// Positive: a named same-package function is resolved and checked.
func leaksNamed() {
	go spinForever() // want `goroutine spinForever has no exit path`
}

func spinForever() {
	for {
		step()
	}
}

// Positive: methods resolve the same way.
type pump struct{ ch chan int }

func (p *pump) loop() {
	for {
		select {
		case v := <-p.ch:
			_ = v
		}
	}
}

func (p *pump) start() {
	go p.loop() // want `goroutine loop has no exit path`
}

// Negative: a ctx.Done case that returns is an exit path.
func stopsOnCtx(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// Negative: a done-channel case that returns is an exit path.
func stopsOnDone(done chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// Negative: ranging over a channel exits when the channel closes.
func drains(ch chan int, wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		for v := range ch {
			_ = v
		}
	}()
}

// Negative: a goroutine that runs to completion.
func oneShot(result chan<- int) {
	go func() {
		result <- compute()
	}()
}

// Negative: a breaking select case is an exit path.
func breaksOut(ch chan int) {
	go func() {
	loop:
		for {
			select {
			case v, ok := <-ch:
				if !ok {
					break loop
				}
				_ = v
			}
		}
	}()
}

// Negative: dynamic callees (function values, other packages) are trusted.
func dynamic(fn func()) {
	go fn()
}

func step() {}

func compute() int { return 1 }
