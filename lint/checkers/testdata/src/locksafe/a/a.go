// Package a exercises locksafe: release on every path, and never hold a
// mutex across a blocking operation.
package a

import (
	"net/http"
	"os"
	"sync"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	vals map[string]int
}

// Positive: the early return skips the unlock.
func (s *store) leakOnEarlyReturn(k string) int {
	s.mu.Lock() // want `s\.mu\.Lock\(\) in leakOnEarlyReturn is not released on every path`
	v, ok := s.vals[k]
	if !ok {
		return -1
	}
	s.mu.Unlock()
	return v
}

// Positive: an RLock leaks the same way.
func (s *store) leakReadLock(k string) int {
	s.rw.RLock() // want `s\.rw\.RLock\(\) in leakReadLock is not released on every path`
	if k == "" {
		return 0
	}
	v := s.vals[k]
	s.rw.RUnlock()
	return v
}

// Positive: holding the lock across a channel send stalls every other
// caller if the receiver is slow.
func (s *store) sendWhileHeld(ch chan int, k string) {
	s.mu.Lock()
	ch <- s.vals[k] // want `channel send in sendWhileHeld while s\.mu is held`
	s.mu.Unlock()
}

// Positive: a deferred unlock satisfies release-on-every-path but the lock
// is still held during the HTTP round trip.
func (s *store) httpWhileHeld(c *http.Client, req *http.Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := c.Do(req) // want `net/http round trip in httpWhileHeld while s\.mu is held`
	return err
}

// Positive: fsync under a lock serializes every caller behind the disk.
func (s *store) fsyncWhileHeld(f *os.File) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return f.Sync() // want `file fsync in fsyncWhileHeld while s\.mu is held`
}

// Positive: waiting on a WaitGroup while holding the lock.
func (s *store) waitWhileHeld(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `WaitGroup wait in waitWhileHeld while s\.mu is held`
}

// Negative: unlock before returning on every path.
func (s *store) balanced(k string) int {
	s.mu.Lock()
	v, ok := s.vals[k]
	if !ok {
		s.mu.Unlock()
		return -1
	}
	s.mu.Unlock()
	return v
}

// Negative: the deferred unlock covers every return and the panic path.
func (s *store) deferred(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k == "" {
		return 0
	}
	return s.vals[k]
}

// Negative: snapshot under the lock, block after releasing it.
func (s *store) snapshotThenSend(ch chan int, k string) {
	s.mu.Lock()
	v := s.vals[k]
	s.mu.Unlock()
	ch <- v
}

// Negative: a non-blocking select is fine under the lock.
func (s *store) tryNotify(ch chan int, k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- s.vals[k]:
	default:
	}
}

// Negative: a function literal is its own execution context; its lock does
// not leak into the enclosing function's analysis.
func (s *store) closureLocks(k string) func() int {
	return func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.vals[k]
	}
}
