// Package main is the one place allowed to mint context roots: processes
// own their lifetime.
package main

import "context"

func main() {
	ctx := context.Background()
	run(ctx)
}

func run(ctx context.Context) { _ = ctx }
