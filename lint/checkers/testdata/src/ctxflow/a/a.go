// Package a exercises ctxflow: context roots outside main, http.NewRequest,
// and blocking functions with no context in scope.
package a

import (
	"context"
	"net/http"
)

// Rule 1: fresh context roots outside package main.

func mintsBackground() context.Context {
	return context.Background() // want `context\.Background\(\) outside package main`
}

func mintsTODO() context.Context {
	return context.TODO() // want `context\.TODO\(\) outside package main`
}

// Rule 2: requests without context.

func buildsRequest(url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want `http\.NewRequest ignores cancellation`
}

func buildsRequestWithContext(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, "GET", url, nil)
}

// Rule 3: blocking work needs a context in scope.

func blocksWithoutCtx(ch chan int) int {
	return <-ch // want `channel receive in blocksWithoutCtx, which has no context\.Context in scope`
}

func sendsWithoutCtx(ch chan int, v int) {
	ch <- v // want `channel send in sendsWithoutCtx`
}

func selectsWithoutCtx(a, b chan int) int {
	select { // want `select without default in selectsWithoutCtx`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func httpWithoutCtx(c *http.Client, req *http.Request) error {
	_, err := c.Do(req) // want `net/http round trip in httpWithoutCtx`
	return err
}

// Only the first blocking op in a function is reported.
func firstOpOnly(ch chan int) {
	<-ch // want `channel receive in firstOpOnly`
	ch <- 1
	<-ch
}

// A closure that blocks counts against the enclosing declaration.
func closureBlocks(ch chan int) func() int {
	return func() int {
		return <-ch // want `channel receive in closureBlocks`
	}
}

// Negative cases: a context anywhere in scope discharges rule 3.

func blocksWithCtxParam(ctx context.Context, ch chan int) int {
	select {
	case <-ctx.Done():
		return 0
	case v := <-ch:
		return v
	}
}

func blocksWithCapturedCtx(ctx context.Context, ch chan int) func() {
	return func() {
		select {
		case <-ctx.Done():
		case ch <- 1:
		}
	}
}

type server struct {
	ctx context.Context
	ch  chan int
}

// A context-typed receiver field discharges rule 3 for methods.
func (s *server) pump(v int) {
	s.ch <- v
}

// Non-blocking selects and plain computation never need a context.
func nonBlockingSelect(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

func pureComputation(x int) int { return x * 2 }
