// Package telemetry is a minimal stand-in for unico/internal/telemetry.
// The metricname analyzer matches registrations structurally — a
// Counter/Gauge/Histogram method on a type named Registry in a package
// named telemetry — so fixtures compile against this fake while the real
// driver sees the real package.
package telemetry

// Labels attaches label pairs to a metric.
type Labels map[string]string

// Counter, Gauge and Histogram mirror the real metric handle types.
type (
	Counter   struct{}
	Gauge     struct{}
	Histogram struct{}
)

// Registry mirrors the real registry's registration surface.
type Registry struct{}

// Counter registers a counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter { return &Counter{} }

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge { return &Gauge{} }

// Histogram registers a histogram.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	return &Histogram{}
}

// DefaultRegistry mirrors the process-wide registry.
var DefaultRegistry = &Registry{}
