package checkers

import (
	"go/ast"
	"go/token"
	"go/types"

	"unico/lint/analysis"
)

// renderExpr renders an ident or selector chain ("mu", "s.mu", "r.f") into
// a canonical string analyzers use as a variable identity. Expressions that
// are not simple chains (calls, index expressions) render as "" — analyzers
// must skip those rather than guess at aliasing.
func renderExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := renderExpr(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return renderExpr(e.X)
	case *ast.UnaryExpr:
		return renderExpr(e.X) // &s.mu locks s.mu
	case *ast.StarExpr:
		return renderExpr(e.X)
	}
	return ""
}

// namedType unwraps one level of pointer and returns the named type
// beneath, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool { return isNamed(t, "context", "Context") }

// isOSFile reports whether t is *os.File (or os.File).
func isOSFile(t types.Type) bool { return isNamed(t, "os", "File") }

// isMutex reports whether t is sync.Mutex or sync.RWMutex.
func isMutex(t types.Type) bool {
	return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
}

// methodCall unpacks a call of the form recv.Name(args...), returning the
// receiver expression and the method name. ok is false for plain function
// calls, package-qualified calls, and conversions.
func methodCall(pass *analysis.Pass, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	if id, isIdent := sel.X.(*ast.Ident); isIdent && pass.TypesInfo != nil {
		if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
			return nil, "", false // pkg.Func(...), not a method
		}
	}
	return sel.X, sel.Sel.Name, true
}

// calleePkgPath resolves the package that declares the function or method
// being called, or "" when type information cannot say. Only declared
// functions count: calling a func-typed variable or parameter says nothing
// about which package's code runs (the variable's own package certainly
// isn't it).
func calleePkgPath(pass *analysis.Pass, call *ast.CallExpr) string {
	if pass.TypesInfo == nil {
		return ""
	}
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isHTTPClientCall reports whether call performs a blocking HTTP round
// trip: a Do/Get/Post/PostForm/Head method on *net/http.Client, or the
// package-level http.Get/Post/PostForm/Head helpers.
func isHTTPClientCall(pass *analysis.Pass, names map[string]string, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Do", "Get", "Post", "PostForm", "Head":
	default:
		return false
	}
	if path, _, isPkg := pkgSelector(pass, names, sel); isPkg {
		return path == "net/http"
	}
	return isNamed(pass.TypeOf(sel.X), "net/http", "Client")
}

// isChanType reports whether t is a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// selectHasDefault reports whether a select statement has a default clause
// (making it non-blocking).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingOp is one operation that can block a goroutine indefinitely.
type blockingOp struct {
	node ast.Node
	desc string // human form: "channel receive", "net/http round trip", ...
}

// blockingKind selects which operation classes count as blocking for an
// analyzer. ctxflow wants the cancellable ones; locksafe adds the purely
// latency-bound ones (fsync, WaitGroup.Wait) a lock must not sit across.
type blockingKind struct {
	chans   bool // sends, receives, select-without-default, range-over-channel
	http    bool // client round trips
	parpool bool // submits to internal/parpool (block until the pool drains)
	fsync   bool // (*os.File).Sync
	wgWait  bool // (*sync.WaitGroup).Wait
}

// findBlockingOps collects blocking operations in one function body, NOT
// descending into nested function literals (a literal is its own execution
// context — callers analyze each separately). Channel operations that form
// a select's comm clauses are attributed to the select itself, which is
// reported once, and only when it lacks a default.
func findBlockingOps(pass *analysis.Pass, names map[string]string, body *ast.BlockStmt, kind blockingKind) []blockingOp {
	if body == nil {
		return nil
	}

	// The channel op inside `case v := <-ch:` / `case ch <- v:` is the
	// select's job, not an independent blocking point.
	commOp := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch s := cc.Comm.(type) {
			case *ast.SendStmt:
				commOp[s] = true
			case *ast.AssignStmt:
				if len(s.Rhs) == 1 {
					if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						commOp[u] = true
					}
				}
			case *ast.ExprStmt:
				if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					commOp[u] = true
				}
			}
		}
		return true
	})

	var ops []blockingOp
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate execution context

		case *ast.SelectStmt:
			if kind.chans && !selectHasDefault(n) {
				ops = append(ops, blockingOp{n, "select without default"})
			}

		case *ast.SendStmt:
			if kind.chans && !commOp[n] {
				ops = append(ops, blockingOp{n, "channel send"})
			}

		case *ast.UnaryExpr:
			if kind.chans && n.Op == token.ARROW && !commOp[n] {
				ops = append(ops, blockingOp{n, "channel receive"})
			}

		case *ast.RangeStmt:
			// Attributed to the ranged expression: that is the node the CFG
			// places in the loop-head block, so dataflow walks find it.
			if kind.chans && isChanType(pass.TypeOf(n.X)) {
				ops = append(ops, blockingOp{n.X, "range over channel"})
			}

		case *ast.CallExpr:
			switch {
			case kind.http && isHTTPClientCall(pass, names, n):
				ops = append(ops, blockingOp{n, "net/http round trip"})
			case kind.parpool && hasPathSegment(calleePkgPath(pass, n), "parpool"):
				ops = append(ops, blockingOp{n, "parpool submit"})
			}
			if recv, name, ok := methodCall(pass, n); ok && len(n.Args) == 0 {
				switch {
				case kind.fsync && name == "Sync" && isOSFile(pass.TypeOf(recv)):
					ops = append(ops, blockingOp{n, "file fsync"})
				case kind.wgWait && name == "Wait" && isNamed(pass.TypeOf(recv), "sync", "WaitGroup"):
					ops = append(ops, blockingOp{n, "WaitGroup wait"})
				}
			}
		}
		return true
	})
	return ops
}

// funcHasContext reports whether a function can see a context: a parameter
// of type context.Context, or any expression of that type referenced in
// the body (covering closures that capture ctx and methods that read a ctx
// field or call req.Context()).
func funcHasContext(pass *analysis.Pass, ftype *ast.FuncType, body *ast.BlockStmt) bool {
	if ftype != nil && ftype.Params != nil {
		for _, f := range ftype.Params.List {
			if isContextType(pass.TypeOf(f.Type)) {
				return true
			}
		}
	}
	if body == nil {
		return false
	}
	has := false
	ast.Inspect(body, func(n ast.Node) bool {
		if has {
			return false
		}
		switch n.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.CallExpr:
			if e, ok := n.(ast.Expr); ok && isContextType(pass.TypeOf(e)) {
				has = true
			}
		}
		return !has
	})
	return has
}
