package checkers

import (
	"go/ast"

	"unico/lint/analysis"
	"unico/lint/cfg"
	"unico/lint/flow"
)

// NewLockSafe returns the lock-safety analyzer. For every sync.Mutex /
// sync.RWMutex acquisition it proves two properties on the function's CFG:
//
//  1. Release on every path. A lock acquired in a function must be provably
//     released before every return — by a matching Unlock/RUnlock on the
//     path or by a deferred unlock (which also covers panic unwinding). An
//     early return that skips the unlock deadlocks the next caller.
//
//  2. Not held across blocking operations. Between Lock and Unlock the
//     goroutine must not perform an operation that can stall indefinitely:
//     channel sends/receives, select-without-default, net/http round trips,
//     parpool submits, fsync, or WaitGroup.Wait. A stalled holder turns
//     one slow peer into a fleet-wide pile-up on the mutex. Deferred
//     unlocks do NOT discharge this property — the lock is still held while
//     the blocking call runs.
//
// The analysis is may-held: one bit per acquisition call site, genned at
// the Lock/RLock, killed at an Unlock/RUnlock of the same rendered receiver
// ("s.mu"). Acquisitions whose receiver is not a simple ident/selector
// chain are skipped — the analyzer refuses to guess at aliasing.
func NewLockSafe() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "locksafe",
		Doc: "sync.Mutex/RWMutex must be released on every path out of the acquiring function " +
			"and must not be held across blocking operations (channels, HTTP, fsync, WaitGroup.Wait)",
	}
	a.Run = func(pass *analysis.Pass) error {
		for _, file := range pass.Files {
			names := importNames(file)
			forEachFuncBody(file, func(name string, body *ast.BlockStmt) {
				checkLockSafe(pass, names, name, body)
			})
		}
		return nil
	}
	return a
}

// lockSite is one Lock/RLock call in the body.
type lockSite struct {
	call *ast.CallExpr
	root string // rendered receiver, e.g. "s.mu"
	read bool   // RLock (vs Lock)
}

func checkLockSafe(pass *analysis.Pass, names map[string]string, fname string, body *ast.BlockStmt) {
	// Collect acquisition sites (outside nested function literals: a
	// literal is its own execution context and gets its own pass).
	var sites []lockSite
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, mname, root, ok := mutexOp(pass, call); ok && (mname == "Lock" || mname == "RLock") {
			_ = recv
			if root != "" {
				sites = append(sites, lockSite{call: call, root: root, read: mname == "RLock"})
			}
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	g := cfg.New(body)
	bitOf := map[*ast.CallExpr]int{}
	for i, s := range sites {
		bitOf[s.call] = i
	}

	// unlocksRoot reports whether node n is an Unlock/RUnlock of root.
	unlockOf := func(n ast.Node) (string, bool) {
		call := asCall(n)
		if call == nil {
			return "", false
		}
		if _, mname, root, ok := mutexOp(pass, call); ok && (mname == "Unlock" || mname == "RUnlock") {
			return root, true
		}
		return "", false
	}

	killRoot := func(facts flow.Set, root string) {
		for i, s := range sites {
			if s.root == root {
				facts.Remove(i)
			}
		}
	}

	// Transfer for property 1 (release-on-every-path): deferred unlocks
	// count as releases, so a DeferStmt of root.Unlock() kills too.
	leakTransfer := func(n ast.Node, facts flow.Set) {
		if call := asCall(n); call != nil {
			if b, ok := bitOf[call]; ok {
				facts.Add(b)
			}
		}
		if root, ok := unlockOf(n); ok {
			killRoot(facts, root)
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			if _, mname, root, ok := mutexOp(pass, d.Call); ok && (mname == "Unlock" || mname == "RUnlock") {
				killRoot(facts, root)
			}
		}
	}

	// Transfer for property 2 (held-across-blocking): only an executed
	// Unlock releases; a deferred one runs after the whole body, so the
	// lock stays held at every intervening blocking op.
	heldTransfer := func(n ast.Node, facts flow.Set) {
		if call := asCall(n); call != nil {
			if b, ok := bitOf[call]; ok {
				facts.Add(b)
			}
		}
		if root, ok := unlockOf(n); ok {
			killRoot(facts, root)
		}
	}

	leak := flow.Forward(g, len(sites), flow.May, flow.NewSet(len(sites)), leakTransfer)
	for _, b := range leak.AtExit(g).Bits() {
		s := sites[b]
		verb := "Lock"
		if s.read {
			verb = "RLock"
		}
		pass.Reportf(s.call.Pos(), "%s.%s() in %s is not released on every path out of the function; unlock before each return or defer the unlock", s.root, verb, fname)
	}

	// Property 2: visit blocking ops with the held-facts before them.
	ops := findBlockingOps(pass, names, body, blockingKind{
		chans: true, http: true, parpool: true, fsync: true, wgWait: true,
	})
	if len(ops) == 0 {
		return
	}
	opAt := map[ast.Node][]blockingOp{}
	for _, op := range ops {
		opAt[op.node] = append(opAt[op.node], op)
	}
	held := flow.Forward(g, len(sites), flow.May, flow.NewSet(len(sites)), heldTransfer)
	reported := map[ast.Node]bool{}
	held.Walk(g, func(n ast.Node, before flow.Set) {
		visit := func(x ast.Node) {
			for _, op := range opAt[x] {
				if reported[op.node] || before.Empty() {
					continue
				}
				reported[op.node] = true
				s := sites[before.Bits()[0]]
				pass.Reportf(op.node.Pos(), "%s in %s while %s is held; release the lock (or snapshot under it) before blocking", op.desc, fname, s.root)
			}
		}
		// A select is its own block node; its case bodies live in other
		// blocks with their own facts, so check only the select itself.
		if _, ok := n.(*ast.SelectStmt); ok {
			visit(n)
			return
		}
		// Blocking ops can sit inside statement nodes (a receive inside an
		// assignment, a call inside an if-cond): scan the statement's
		// subtree, not just the node itself.
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			visit(x)
			return true
		})
	})
}

// mutexOp unpacks recv.Method() where recv has mutex type, returning the
// receiver, method name, and rendered root.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (recv ast.Expr, name string, root string, ok bool) {
	recv, name, isMeth := methodCall(pass, call)
	if !isMeth || len(call.Args) != 0 {
		return nil, "", "", false
	}
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", "", false
	}
	if !isMutex(pass.TypeOf(recv)) {
		return nil, "", "", false
	}
	return recv, name, renderExpr(recv), true
}

// asCall unwraps an expression-statement call or a bare call node.
func asCall(n ast.Node) *ast.CallExpr {
	switch n := n.(type) {
	case *ast.ExprStmt:
		if c, ok := n.X.(*ast.CallExpr); ok {
			return c
		}
	case *ast.CallExpr:
		return n
	}
	return nil
}
