package checkers

import (
	"go/ast"

	"unico/lint/analysis"
)

// persistSegments are the packages that own durable artifacts (write-ahead
// journals, snapshots, flight records, cache warm-start files). PR 3 made
// their crash safety contractual: every write is tmp + fsync + rename.
var persistSegments = []string{"checkpoint", "flightrec", "evalcache", "disttrace"}

// NewAtomicWrite returns the durable-write analyzer. Two rules:
//
//  1. Everywhere: an os.Rename in a function that performs no Sync() call
//     before it is flagged. Renaming an unsynced temp file can publish a
//     zero-length or torn file after a crash, which is exactly what the
//     atomic-snapshot protocol exists to prevent.
//  2. In the persistence packages: os.WriteFile is flagged outright — it
//     truncates in place and fsyncs nothing, so a crash mid-write corrupts
//     the artifact. Those packages must use the tmp+fsync+rename helper.
func NewAtomicWrite() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "atomicwrite",
		Doc: "os.Rename must be preceded by a Sync() of the source file in the same function, and the " +
			"persistence packages (checkpoint, flightrec, evalcache, disttrace) may not use os.WriteFile at all",
	}
	a.Run = func(pass *analysis.Pass) error {
		persist := anySegment(pass.Path, persistSegments)
		for _, file := range pass.Files {
			names := importNames(file)
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkFuncAtomicWrite(pass, names, fn, persist)
			}
		}
		return nil
	}
	return a
}

func checkFuncAtomicWrite(pass *analysis.Pass, names map[string]string, fn *ast.FuncDecl, persist bool) {
	// First sweep: where do Sync() calls happen in this function?
	var syncs []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" && len(call.Args) == 0 {
				syncs = append(syncs, call)
			}
		}
		return true
	})
	syncBefore := func(n ast.Node) bool {
		for _, s := range syncs {
			if s.Pos() < n.Pos() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, name, ok := pkgSelector(pass, names, sel)
		if !ok || path != "os" {
			return true
		}
		switch name {
		case "Rename":
			if !syncBefore(call) {
				pass.Reportf(call.Pos(),
					"os.Rename without a prior Sync() in %s: an unsynced source file can surface torn or empty after a crash", fn.Name.Name)
			}
		case "WriteFile":
			if persist {
				pass.Reportf(call.Pos(),
					"os.WriteFile in persistence package %s truncates in place without fsync; use the tmp+fsync+rename snapshot path", pass.Path)
			}
		}
		return true
	})
}
