package checkers

import (
	"go/ast"

	"unico/lint/analysis"
)

// packageLevelGets are the net/http convenience functions that ride on
// http.DefaultClient and therefore have no timeout: a wedged PPA server
// hangs the whole co-search, which is exactly the failure PR 2's dist
// hardening removed.
var packageLevelGets = map[string]bool{
	"Get": true, "Post": true, "Head": true, "PostForm": true,
}

// NewNoDefaultClient returns the HTTP-client hygiene analyzer. Everything
// outside internal/dist is forbidden from constructing HTTP clients at all:
// http.DefaultClient (in any expression), the package-level Get/Post/Head/
// PostForm helpers, and http.Client composite literals that do not set
// Timeout. internal/dist is the one sanctioned transport and is exempt.
func NewNoDefaultClient() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "nodefaultclient",
		Doc: "forbid http.DefaultClient, http.Get/Post/Head/PostForm and zero-timeout http.Client " +
			"literals outside internal/dist; the dist package is the only sanctioned HTTP transport",
	}
	a.Run = func(pass *analysis.Pass) error {
		if hasPathSegment(pass.Path, "dist") {
			return nil
		}
		for _, file := range pass.Files {
			names := importNames(file)
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					path, name, ok := pkgSelector(pass, names, n)
					if !ok || path != "net/http" {
						return true
					}
					if name == "DefaultClient" {
						pass.Reportf(n.Pos(),
							"http.DefaultClient has no timeout and hangs on a wedged server; use internal/dist or a client with an explicit Timeout")
					}
					if packageLevelGets[name] {
						pass.Reportf(n.Pos(),
							"http.%s uses http.DefaultClient (no timeout); use internal/dist or a client with an explicit Timeout", name)
					}
				case *ast.CompositeLit:
					sel, ok := n.Type.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					path, name, ok := pkgSelector(pass, names, sel)
					if !ok || path != "net/http" || name != "Client" {
						return true
					}
					if !literalSetsField(n, "Timeout") {
						pass.Reportf(n.Pos(),
							"http.Client literal without Timeout never times out; set Timeout or use internal/dist")
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// literalSetsField reports whether composite literal lit sets the named
// field. Positional http.Client literals are vanishingly rare and would set
// every field, so only keyed elements are considered — an unkeyed literal
// with elements is conservatively treated as setting the field.
func literalSetsField(lit *ast.CompositeLit, field string) bool {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return true // positional literal: all fields set
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
			return true
		}
	}
	return false
}
