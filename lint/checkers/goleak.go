package checkers

import (
	"go/ast"
	"go/types"

	"unico/lint/analysis"
	"unico/lint/cfg"
)

// NewGoLeak returns the goroutine-leak analyzer. Every `go` statement must
// start a goroutine with a provable exit path: the body's CFG must reach
// its exit block. A goroutine whose only shape is `for { select { ... } }`
// with no return, no breaking case, and no closing range never terminates —
// it pins its stack, its captured references, and (in this repo) a fleet
// member's worker slot for the life of the process.
//
// The proof is deliberately syntactic and local: the CFG treats every
// channel receive as eventually yielding a value and every ranged channel
// as eventually closing, so a `case <-ctx.Done(): return` or a
// `range jobs` loop counts as an exit path. What the analyzer rejects is
// the goroutine with no exit-shaped code at all — the ones that are leaked
// by construction, not by a peer's misbehavior.
//
// Goroutines whose body is a named function in another package are trusted
// (parpool workers are the common case); same-package named functions are
// checked by building the callee's CFG.
func NewGoLeak() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "goleak",
		Doc: "every go statement needs a provable exit path (a returning select case, " +
			"a closing range, or a terminating body); goroutines that cannot exit are leaks",
	}
	a.Run = func(pass *analysis.Pass) error {
		// Index same-package function declarations so `go s.loop()` can be
		// resolved to a body worth checking.
		decls := map[types.Object]*ast.FuncDecl{}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if pass.TypesInfo != nil {
					if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
						decls[obj] = fn
					}
				}
			}
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, decls, g)
				return true
			})
		}
		return nil
	}
	return a
}

func checkGoStmt(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, g *ast.GoStmt) {
	body, name := goBody(pass, decls, g)
	if body == nil {
		return // external or dynamic callee: trusted
	}
	graph := cfg.New(body)
	if graph.ExitReachable() {
		return
	}
	pass.Reportf(g.Pos(), "goroutine %s has no exit path: no return, no breaking select case, no closing range; add a ctx.Done()/shutdown case so it can terminate", name)
}

// goBody resolves the body the goroutine will run: a function literal, or a
// same-package named function (possibly a method). Calls through variables,
// interfaces, or other packages return nil.
func goBody(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, g *ast.GoStmt) (*ast.BlockStmt, string) {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body, "literal"
	case *ast.Ident:
		if pass.TypesInfo != nil {
			if fn, ok := decls[pass.TypesInfo.Uses[fun]]; ok {
				return fn.Body, fn.Name.Name
			}
		}
	case *ast.SelectorExpr:
		if pass.TypesInfo != nil {
			if fn, ok := decls[pass.TypesInfo.Uses[fun.Sel]]; ok {
				return fn.Body, fn.Name.Name
			}
		}
	}
	return nil, ""
}
