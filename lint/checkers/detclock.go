package checkers

import (
	"go/ast"
	"strings"

	"unico/lint/analysis"
	"unico/lint/suppress"
)

// wallClockFuncs are the package time selectors that observe or depend on
// the real clock. Referencing one (called or not — assigning time.Now to a
// variable counts) is flagged everywhere in the module: deterministic code
// must charge cost to internal/simclock, and genuinely real-time code
// (telemetry latencies, retry backoff, run metadata stamps) documents itself
// with a //unicolint:allow detclock comment.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randAllowed are the math/rand (and rand/v2) selectors that do NOT touch
// the global, unseeded source: constructors for seeded generators and the
// type names needed to declare them.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true,
	"NewChaCha8": true, "Rand": true, "Source": true, "Source64": true,
	"Zipf": true, "PCG": true, "ChaCha8": true,
}

// strictSegments are the deterministic search packages where ONLY simclock
// and seeded *rand.Rand are legal — a suppression comment there is itself a
// violation, because resume identity is exactly what those packages exist
// to guarantee.
var strictSegments = []string{
	"core", "mobo", "sh", "gp", "mapsearch",
	"pareto", "robust", "checkpoint", "baselines", "simclock",
}

// NewDetClock returns the determinism analyzer.
func NewDetClock() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "detclock",
		Doc: "forbid wall-clock reads (time.Now/Since/Sleep/timers) and the global math/rand source; " +
			"deterministic search state must come from internal/simclock and seeded *rand.Rand " +
			"(suppression is refused inside the strict search packages)",
	}
	a.Run = func(pass *analysis.Pass) error {
		strict := anySegment(pass.Path, strictSegments)
		for _, file := range pass.Files {
			names := importNames(file)
			if strict {
				reportStrictAllows(pass, file)
			}
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				path, name, ok := pkgSelector(pass, names, sel)
				if !ok {
					return true
				}
				switch path {
				case "time":
					if wallClockFuncs[name] {
						pass.Reportf(sel.Pos(),
							"time.%s reads the wall clock; deterministic code must use internal/simclock or an injected clock", name)
					}
				case "math/rand", "math/rand/v2":
					if !randAllowed[name] {
						pass.Reportf(sel.Pos(),
							"rand.%s uses the global rand source; use a seeded *rand.Rand threaded from the run seed", name)
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// reportStrictAllows flags detclock suppression comments inside strict
// packages. The diagnostics are unsuppressable — the comment being flagged
// would otherwise silence its own report.
func reportStrictAllows(pass *analysis.Pass, file *ast.File) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimLeft(strings.TrimPrefix(c.Text, "//"), " \t")
			rest, ok := strings.CutPrefix(text, suppress.Prefix)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) > 0 && fields[0] == "detclock" {
				pass.ReportNoSuppress(c.Pos(),
					"suppression of detclock is not permitted in %s: the deterministic search packages admit only simclock and seeded *rand.Rand", pass.Path)
			}
		}
	}
}
