package checkers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"

	"unico/lint/analysis"
)

// metricNamePattern is the telemetry naming contract from PR 1: every
// series this repo exports is unico_-prefixed snake case, with the unit
// suffixes Prometheus conventions expect.
var metricNamePattern = regexp.MustCompile(`^unico_[a-z0-9_]+(_total|_seconds|_bytes)?$`)

// NewMetricName returns the telemetry-registration analyzer. It inspects
// every Counter/Gauge/Histogram registration on a telemetry.Registry and
// enforces that the metric name is a string literal (so the full metric
// namespace is greppable and auditable), matches metricNamePattern, and is
// registered at exactly one call site across the whole build — two sites
// sharing a name silently merge into one family with first-wins help text
// and buckets.
//
// The returned analyzer carries the cross-package duplicate table; callers
// must use a fresh instance per run (see All).
func NewMetricName() *analysis.Analyzer {
	firstSite := map[string]token.Position{}
	a := &analysis.Analyzer{
		Name: "metricname",
		Doc: "telemetry metric registrations must use unico_-prefixed snake-case string literals, " +
			"each registered at exactly one call site in the build",
	}
	a.Run = func(pass *analysis.Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !isRegistryMethod(pass, sel) || len(call.Args) == 0 {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					pass.Reportf(call.Args[0].Pos(),
						"telemetry metric name must be a string literal so the metric namespace is statically auditable")
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				if !metricNamePattern.MatchString(name) {
					pass.Reportf(lit.Pos(),
						"metric name %q does not match %s", name, metricNamePattern)
				}
				pos := pass.Fset.Position(lit.Pos())
				if first, dup := firstSite[name]; dup {
					pass.Reportf(lit.Pos(),
						"metric %q is already registered at %s; duplicate registrations silently merge families", name, first)
				} else {
					firstSite[name] = pos
				}
				return true
			})
		}
		return nil
	}
	return a
}

// isRegistryMethod reports whether sel is a Counter/Gauge/Histogram method
// selection on a telemetry.Registry (by pointer or value). Matching is by
// type identity — package named "telemetry", type named "Registry" — so the
// analyzer works both against unico/internal/telemetry and against the
// fixture telemetry package in testdata.
func isRegistryMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
	default:
		return false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "telemetry"
}
