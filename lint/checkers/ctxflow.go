package checkers

import (
	"go/ast"
	"go/types"

	"unico/lint/analysis"
)

// NewCtxFlow returns the context-propagation analyzer. Cancellation is
// load-bearing in this repo — the fleet dispatcher, the PPA evaluation
// pool, and the distributed tracer all rely on a context reaching the
// blocking call so a dead peer or an operator abort actually stops work.
// The analyzer enforces three rules:
//
//  1. context.Background() and context.TODO() are banned outside package
//     main: they mint a fresh, uncancellable root in the middle of the call
//     tree and silently detach everything below from the caller's deadline.
//     Library code must thread the caller's ctx instead.
//
//  2. http.NewRequest is banned in favor of http.NewRequestWithContext:
//     the former produces a request that ignores cancellation entirely.
//
//  3. A function that performs cancellable blocking work — channel
//     operations, select-without-default, HTTP round trips, parpool
//     submits — must be able to see a context: a context.Context parameter,
//     or any context-typed expression in the body (a captured ctx, a struct
//     field, req.Context()). A blocking function with no context in scope
//     cannot be cancelled, ever; the report lands on its first blocking
//     operation.
//
// Test files are never loaded by the driver, so tests are exempt
// automatically.
func NewCtxFlow() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "ctxflow",
		Doc: "blocking code must be cancellable: no context.Background/TODO outside main, " +
			"no http.NewRequest (use NewRequestWithContext), and functions doing blocking " +
			"work must have a context.Context in scope",
	}
	a.Run = func(pass *analysis.Pass) error {
		isMain := false
		for _, file := range pass.Files {
			if file.Name.Name == "main" {
				isMain = true
			}
		}
		for _, file := range pass.Files {
			names := importNames(file)
			checkCtxRoots(pass, names, file, isMain)
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkCtxBlocking(pass, names, fn)
			}
		}
		return nil
	}
	return a
}

// checkCtxRoots flags rules 1 and 2 anywhere in the file.
func checkCtxRoots(pass *analysis.Pass, names map[string]string, file *ast.File, isMain bool) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, name, ok := pkgSelector(pass, names, sel)
		if !ok {
			return true
		}
		switch {
		case path == "context" && (name == "Background" || name == "TODO") && !isMain:
			pass.Reportf(call.Pos(), "context.%s() outside package main detaches this call tree from the caller's cancellation; thread the caller's ctx instead", name)
		case path == "net/http" && name == "NewRequest":
			pass.Reportf(call.Pos(), "http.NewRequest ignores cancellation; use http.NewRequestWithContext with the caller's ctx")
		}
		return true
	})
}

// checkCtxBlocking flags rule 3 for one function declaration. Blocking ops
// inside nested function literals count against the declaration: a closure
// that blocks still needs a context from somewhere in the function.
func checkCtxBlocking(pass *analysis.Pass, names map[string]string, fn *ast.FuncDecl) {
	if funcHasContext(pass, fn.Type, fn.Body) {
		return
	}
	// Receivers holding a context-typed field also count: methods on such
	// types can cancel via the stored context even without a parameter.
	if fn.Recv != nil && recvHasContextField(pass, fn.Recv) {
		return
	}
	kind := blockingKind{chans: true, http: true, parpool: true}
	var first blockingOp
	var walkBody func(body *ast.BlockStmt)
	walkBody = func(body *ast.BlockStmt) {
		for _, op := range findBlockingOps(pass, names, body, kind) {
			if first.node == nil || op.node.Pos() < first.node.Pos() {
				first = op
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				walkBody(lit.Body)
				return false
			}
			return true
		})
	}
	walkBody(fn.Body)
	if first.node == nil {
		return
	}
	pass.Reportf(first.node.Pos(), "%s in %s, which has no context.Context in scope; accept a ctx so this blocking work can be cancelled", first.desc, fn.Name.Name)
}

// recvHasContextField reports whether the method receiver's struct type has
// a field of type context.Context (stored-ctx pattern, e.g. a server that
// carries its lifecycle ctx).
func recvHasContextField(pass *analysis.Pass, recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	n := namedType(pass.TypeOf(recv.List[0].Type))
	if n == nil {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}
