package checkers

import (
	"go/ast"
	"strings"

	"unico/lint/analysis"
	"unico/lint/cfg"
	"unico/lint/flow"
)

// NewDurErr returns the durable-error analyzer. In the persistence
// packages (checkpoint, flightrec, evalcache, disttrace — the ones whose
// crash-safety PR 3 made contractual) the error results of the calls that
// make data durable must not be discarded:
//
//   - (*os.File).Sync: a discarded fsync error IS a lost write — the fsync
//     return is the only durability signal the OS gives. Flagged in every
//     form, including `_ =`.
//   - os.Rename: the publish step of the tmp+fsync+rename protocol.
//     Flagged in every form.
//   - (*os.File).Close on a file opened for writing: the OS may surface a
//     deferred write error only at close. Flagged when control flow proves
//     the file may be write-open and unsynced at the close; a close that
//     follows a *checked* Sync, or a close of a file opened read-only, is
//     fine. An explicit `_ = f.Close()` is treated as an acknowledged
//     discard (the cleanup-on-error idiom) and not reported.
//
// The write-open fact is tracked by forward dataflow on the function's CFG:
// os.Create / os.CreateTemp / os.OpenFile-with-write-flags gen it, a
// checked Sync or checked Close kills it, and a discarded close is reported
// only if the fact may reach it. Deferred closes are judged against the
// facts at function exit, where the deferred call actually runs.
func NewDurErr() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "durerr",
		Doc: "in the persistence packages (checkpoint, flightrec, evalcache, disttrace) the errors of " +
			"(*os.File).Sync, os.Rename, and Close-on-a-written-file must be checked, not discarded",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !anySegment(pass.Path, persistSegments) {
			return nil
		}
		for _, file := range pass.Files {
			names := importNames(file)
			forEachFuncBody(file, func(name string, body *ast.BlockStmt) {
				checkDurErr(pass, names, name, body)
			})
		}
		return nil
	}
	return a
}

// forEachFuncBody visits every function body in the file: declarations and
// each function literal, innermost last. Each body is analyzed as its own
// control-flow universe.
func forEachFuncBody(file *ast.File, visit func(name string, body *ast.BlockStmt)) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		visit(fn.Name.Name, fn.Body)
		name := fn.Name.Name
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				visit(name+".func", lit.Body)
			}
			return true
		})
	}
}

func checkDurErr(pass *analysis.Pass, names map[string]string, fname string, body *ast.BlockStmt) {
	g := cfg.New(body)

	// Bits: one per distinct write-opened file root in this function.
	rootBit := map[string]int{}
	bitFor := func(root string) int {
		if b, ok := rootBit[root]; ok {
			return b
		}
		b := len(rootBit)
		rootBit[root] = b
		return b
	}

	// Pre-scan so the bit universe is stable before solving: find every
	// assignment whose RHS write-opens a file.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(body) {
			return false
		}
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, root := range writeOpenTargets(pass, names, as) {
				bitFor(root)
			}
		}
		return true
	})
	if len(rootBit) == 0 && !anyDurCall(pass, names, body) {
		return
	}

	// Any Sync or Close of the root kills the unsynced-write fact, in any
	// form: checked forms discharge the obligation, and the discarded forms
	// are reported at their own site — letting the fact survive past them
	// would only re-report the same path at every later close.
	kill := func(facts flow.Set, e ast.Expr) {
		if root, ok := syncOrCloseOf(pass, e); ok {
			if b, tracked := rootBit[root]; tracked {
				facts.Remove(b)
			}
		}
	}
	transfer := func(n ast.Node, facts flow.Set) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, root := range writeOpenTargets(pass, names, n) {
				facts.Add(bitFor(root))
			}
			for _, rhs := range n.Rhs {
				kill(facts, rhs)
			}
		case *ast.ExprStmt:
			kill(facts, n.X)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				kill(facts, r)
			}
		}
	}

	numBits := len(rootBit)
	if numBits == 0 {
		numBits = 1 // flow.Set wants a non-empty universe
	}
	sol := flow.Forward(g, numBits, flow.May, flow.NewSet(numBits), transfer)

	report := func(n ast.Node, format string, args ...any) {
		pass.Reportf(n.Pos(), format, args...)
	}

	sol.Walk(g, func(n ast.Node, before flow.Set) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return
			}
			if isOSRename(pass, names, call) {
				report(n, "os.Rename error discarded in %s: the rename is the publish step of the snapshot protocol and its failure must surface", fname)
				return
			}
			recv, mname, isMeth := methodCall(pass, call)
			if !isMeth || len(call.Args) != 0 || !isOSFile(pass.TypeOf(recv)) {
				return
			}
			root := renderExpr(recv)
			switch mname {
			case "Sync":
				report(n, "%s.Sync() error discarded in %s: the fsync return is the only durability signal; check it", root, fname)
			case "Close":
				if b, tracked := rootBit[root]; tracked && before.Has(b) {
					report(n, "%s.Close() error discarded in %s while the file may hold unsynced writes: the OS may report a failed write only at close", root, fname)
				}
			}
		case *ast.AssignStmt:
			// `_ = f.Sync()` / `_, _ = ..., os.Rename(...)`: Sync and
			// Rename stay flagged even when explicitly blanked.
			if !allBlank(n.Lhs) {
				return
			}
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if isOSRename(pass, names, call) {
					report(n, "os.Rename error explicitly discarded in %s: the publish step must not be best-effort", fname)
					continue
				}
				if recv, mname, isMeth := methodCall(pass, call); isMeth && mname == "Sync" && len(call.Args) == 0 && isOSFile(pass.TypeOf(recv)) {
					report(n, "%s.Sync() error explicitly discarded in %s: the fsync return is the only durability signal; check it", renderExpr(recv), fname)
				}
			}
		}
	})

	// Deferred closes run at function exit: judge them against the facts
	// there. Must-join, not may: the idiomatic `defer f.Close()` paired
	// with a checked `return f.Sync()` leaves the fact set on the early
	// error returns only, and a discarded close after a failed write is an
	// acknowledged cleanup. What the defer check catches is the function
	// that NEVER syncs: then the fact holds on every path to exit. (A
	// deferred Sync or Rename discards by construction, on any path.)
	if !g.ExitReachable() {
		return
	}
	exit := flow.Forward(g, numBits, flow.Must, flow.NewSet(numBits), transfer).AtExit(g)
	for _, d := range g.Defers {
		call := d.Call
		if isOSRename(pass, names, call) {
			report(d, "deferred os.Rename discards its error in %s; rename inline and check it", fname)
			continue
		}
		recv, mname, isMeth := methodCall(pass, call)
		if !isMeth || len(call.Args) != 0 || !isOSFile(pass.TypeOf(recv)) {
			continue
		}
		root := renderExpr(recv)
		switch mname {
		case "Sync":
			report(d, "deferred %s.Sync() discards its error in %s; sync inline and check it", root, fname)
		case "Close":
			if b, tracked := rootBit[root]; tracked && exit.Has(b) {
				report(d, "deferred %s.Close() in %s discards the close error of a file that may hold unsynced writes; close inline after a checked Sync", root, fname)
			}
		}
	}
}

// writeOpenTargets returns the roots assigned from a write-opening call in
// this assignment: os.Create, os.CreateTemp, or os.OpenFile with write
// flags.
func writeOpenTargets(pass *analysis.Pass, names map[string]string, as *ast.AssignStmt) []string {
	if len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	path, name, ok := pkgSelector(pass, names, sel)
	if !ok || path != "os" {
		return nil
	}
	switch name {
	case "Create", "CreateTemp":
	case "OpenFile":
		if len(call.Args) < 2 || !flagsWrite(call.Args[1]) {
			return nil
		}
	default:
		return nil
	}
	if len(as.Lhs) == 0 {
		return nil
	}
	root := renderExpr(as.Lhs[0])
	if root == "" || root == "_" {
		return nil
	}
	return []string{root}
}

// flagsWrite reports whether an os.OpenFile flags expression mentions a
// writing mode. Syntactic: the flags are almost always a literal |-chain of
// os.O_* constants; an opaque variable is treated as writing (conservative
// for a durability linter).
func flagsWrite(e ast.Expr) bool {
	text := flagText(e)
	if text == "" {
		return true // opaque: assume writable
	}
	for _, w := range []string{"O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC"} {
		if strings.Contains(text, w) {
			return true
		}
	}
	return false
}

func flagText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return renderExpr(e)
	case *ast.Ident:
		return e.Name
	case *ast.BinaryExpr:
		return flagText(e.X) + "|" + flagText(e.Y)
	case *ast.ParenExpr:
		return flagText(e.X)
	}
	return ""
}

// syncOrCloseOf unpacks an expression of the form root.Sync() or
// root.Close() on an *os.File, returning the root.
func syncOrCloseOf(pass *analysis.Pass, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	recv, name, isMeth := methodCall(pass, call)
	if !isMeth || len(call.Args) != 0 || (name != "Sync" && name != "Close") || !isOSFile(pass.TypeOf(recv)) {
		return "", false
	}
	root := renderExpr(recv)
	if root == "" {
		return "", false
	}
	return root, true
}

func isOSRename(pass *analysis.Pass, names map[string]string, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	path, name, ok := pkgSelector(pass, names, sel)
	return ok && path == "os" && name == "Rename"
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(lhs) > 0
}

// anyDurCall cheaply reports whether the body mentions Sync, Close or
// Rename at all, so functions without them skip graph construction.
func anyDurCall(pass *analysis.Pass, names map[string]string, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isOSRename(pass, names, call) {
			found = true
			return false
		}
		if _, name, isMeth := methodCall(pass, call); isMeth && (name == "Sync" || name == "Close") {
			found = true
			return false
		}
		return true
	})
	return found
}
