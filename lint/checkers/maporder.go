package checkers

import (
	"go/ast"
	"go/types"

	"unico/lint/analysis"
)

// orderSinks are method/function names whose calls are order-dependent:
// they write bytes to an output, feed a hash or encoder, or emit a durable
// record. Reaching one from inside a map range makes the artifact depend on
// Go's randomized map iteration order — the classic resume-identity
// breaker. Hash finalizers (Sum) are deliberately absent: hashes absorb
// order through Write, which is listed, while Sum after the loop is fine.
var orderSinks = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Encode": true, "Emit": true, "Record": true,
}

// NewMapOrder returns the map-iteration-order analyzer. It flags `range`
// over a map whose body (a) appends to a slice that is never subsequently
// sorted in the same function, or (b) calls an order-dependent sink
// (writers, printers, hashes, encoders, record emitters). The sanctioned
// idiom — collect keys, sort, iterate the sorted slice — is recognized and
// stays silent.
func NewMapOrder() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "maporder",
		Doc: "flag range-over-map whose body accumulates into an unsorted slice or writes/hashes/emits " +
			"records; map iteration order is randomized, so sort keys before producing ordered output",
	}
	a.Run = func(pass *analysis.Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkFuncMapOrder(pass, fn.Body)
			}
		}
		return nil
	}
	return a
}

func checkFuncMapOrder(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, body, rng)
		return true
	})
}

// checkMapRangeBody inspects one map-range body for order-dependent sinks.
// fnBody is the whole enclosing function body, used to look for a sort of
// the accumulated slice after the range.
func checkMapRangeBody(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && len(call.Args) > 0 {
				target := rootObject(pass, call.Args[0])
				if target != nil && sortedAfter(pass, fnBody, rng, target) {
					return true
				}
				pass.Reportf(call.Pos(),
					"append inside range over map accumulates in nondeterministic order; collect keys, sort, then iterate the sorted slice")
			}
		case *ast.SelectorExpr:
			if orderSinks[fun.Sel.Name] {
				pass.Reportf(call.Pos(),
					"%s inside range over map produces nondeterministic output order; iterate sorted keys instead", fun.Sel.Name)
			}
		}
		return true
	})
}

// rootObject resolves the accumulated-into expression (an identifier or a
// field selection) to its types.Object, or nil.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.ObjectOf(e)
	case *ast.SelectorExpr:
		return pass.ObjectOf(e.Sel)
	}
	return nil
}

// sortedAfter reports whether, somewhere after the range statement in the
// same function, target is passed (anywhere in the argument tree) to a
// function from package sort or slices, or has a method named Sort called
// on it. That is the sanctioned collect-sort-iterate idiom.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		isSortCall := false
		if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
			if obj := pass.TypesInfo.Uses[id]; obj == nil {
				isSortCall = true
			} else if _, isPkg := obj.(*types.PkgName); isPkg {
				isSortCall = true
			}
		}
		if !isSortCall && sel.Sel.Name != "Sort" {
			return true
		}
		args := call.Args
		if !isSortCall {
			args = append([]ast.Expr{sel.X}, call.Args...) // receiver of .Sort()
		}
		for _, arg := range args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.ObjectOf(id) == target {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
