// Package checkers holds unicolint's project-specific analyzers. Each one
// mechanizes an invariant a previous PR made load-bearing:
//
//   - detclock: bit-identical crash/resume requires that search code only
//     observes simulated time (internal/simclock) and seeded *rand.Rand.
//   - nodefaultclient: the dist transport hang fixed in PR 2 came from
//     http.DefaultClient's missing timeout; only internal/dist may build
//     HTTP clients, and always with a timeout.
//   - metricname: the telemetry contract (PR 1) names every series
//     unico_*; duplicate registrations silently merge families.
//   - maporder: Go map iteration order is random, the classic way to leak
//     nondeterminism into checkpoints, flight records and hashes.
//   - atomicwrite: crash safety (PR 3) depends on the fsync-then-rename
//     discipline for every persisted artifact.
//
// Four analyzers are CFG/dataflow-based (built on unico/lint/cfg and
// unico/lint/flow):
//
//   - ctxflow: blocking work must be cancellable — no context.Background/
//     TODO outside main, no http.NewRequest, a ctx in scope wherever the
//     code blocks.
//   - goleak: every go statement needs a provable exit path.
//   - locksafe: mutexes released on every path and never held across
//     blocking operations.
//   - durerr: in persistence packages, Sync/Rename/Close-on-written-file
//     errors must not be discarded.
package checkers

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"unico/lint/analysis"
)

// All returns fresh instances of every analyzer, in reporting order. Fresh
// instances matter: metricname carries cross-package state (the duplicate
// registration table) that must reset between driver runs.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NewDetClock(),
		NewNoDefaultClient(),
		NewMetricName(),
		NewMapOrder(),
		NewAtomicWrite(),
		NewCtxFlow(),
		NewGoLeak(),
		NewLockSafe(),
		NewDurErr(),
	}
}

// importNames maps the local name of each import in file to its import
// path, resolving renames ("mrand \"math/rand\"") and defaulting to the
// path's last element.
func importNames(file *ast.File) map[string]string {
	out := map[string]string{}
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		}
		out[name] = path
	}
	return out
}

// pkgSelector resolves call/selector expressions of the form pkgname.Ident
// where pkgname is a file-level import. Returns the import path and the
// selected name, or ok=false for selectors on values ("c.Now") or locals
// shadowing the package name.
func pkgSelector(pass *analysis.Pass, names map[string]string, sel *ast.SelectorExpr) (path, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	path, isImport := names[id.Name]
	if !isImport {
		return "", "", false
	}
	// A local variable may shadow the import name; trust type info when
	// available, the import table otherwise.
	if pass.TypesInfo != nil {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			if _, isPkg := obj.(*types.PkgName); !isPkg {
				return "", "", false
			}
		}
	}
	return path, sel.Sel.Name, true
}

// hasPathSegment reports whether importPath contains segment as a whole
// path element ("unico/internal/core" has "core" but not "cor").
func hasPathSegment(importPath, segment string) bool {
	for _, el := range strings.Split(importPath, "/") {
		if el == segment {
			return true
		}
	}
	return false
}

// anySegment reports whether importPath contains any of the segments.
func anySegment(importPath string, segments []string) bool {
	for _, s := range segments {
		if hasPathSegment(importPath, s) {
			return true
		}
	}
	return false
}
