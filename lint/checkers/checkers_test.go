package checkers_test

import (
	"testing"

	"unico/lint/analysistest"
	"unico/lint/checkers"
)

func TestDetClock(t *testing.T) {
	analysistest.Run(t, checkers.NewDetClock(), "detclock/a")
}

func TestDetClockStrictPackagesRefuseSuppression(t *testing.T) {
	analysistest.Run(t, checkers.NewDetClock(), "detclock/core")
}

func TestNoDefaultClient(t *testing.T) {
	analysistest.Run(t, checkers.NewNoDefaultClient(), "nodefaultclient/a")
}

func TestNoDefaultClientDistExempt(t *testing.T) {
	analysistest.Run(t, checkers.NewNoDefaultClient(), "nodefaultclient/dist")
}

func TestMetricName(t *testing.T) {
	analysistest.Run(t, checkers.NewMetricName(), "metricname/a")
}

func TestMetricNameDuplicateAcrossFiles(t *testing.T) {
	analysistest.Run(t, checkers.NewMetricName(), "metricname/dup")
}

func TestMetricNameDuplicateAcrossPackages(t *testing.T) {
	analysistest.Run(t, checkers.NewMetricName(), "metricname/crosspkg1", "metricname/crosspkg2")
}

// A fresh metricname instance must not remember names from previous runs:
// registering the same fixture twice through two instances stays clean.
func TestMetricNameStateResets(t *testing.T) {
	analysistest.Run(t, checkers.NewMetricName(), "metricname/crosspkg1")
	analysistest.Run(t, checkers.NewMetricName(), "metricname/crosspkg1")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, checkers.NewMapOrder(), "maporder/a")
}

func TestAtomicWrite(t *testing.T) {
	analysistest.Run(t, checkers.NewAtomicWrite(), "atomicwrite/a", "atomicwrite/checkpoint")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, checkers.NewCtxFlow(), "ctxflow/a")
}

func TestCtxFlowMainExempt(t *testing.T) {
	analysistest.Run(t, checkers.NewCtxFlow(), "ctxflow/mainpkg")
}

func TestGoLeak(t *testing.T) {
	analysistest.Run(t, checkers.NewGoLeak(), "goleak/a")
}

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, checkers.NewLockSafe(), "locksafe/a")
}

func TestDurErr(t *testing.T) {
	analysistest.Run(t, checkers.NewDurErr(), "durerr/checkpoint")
}

func TestDurErrOutsidePersistencePackages(t *testing.T) {
	analysistest.Run(t, checkers.NewDurErr(), "durerr/a")
}

func TestAllReturnsFreshInstances(t *testing.T) {
	a, b := checkers.All(), checkers.All()
	if len(a) != 9 {
		t.Fatalf("All() = %d analyzers, want 9", len(a))
	}
	for i := range a {
		if a[i] == b[i] {
			t.Errorf("All() returned a shared *Analyzer for %s; cross-run state would leak", a[i].Name)
		}
		if a[i].Name != b[i].Name {
			t.Errorf("All() order is not stable: %s vs %s", a[i].Name, b[i].Name)
		}
	}
}
