// Package suppress parses and applies unicolint's suppression directive:
//
//	//unicolint:allow <analyzer> <reason>
//
// An allow comment silences diagnostics of the named analyzer on the
// comment's own line and on the line directly below it (so both trailing
// comments and comment-above style work). The reason is mandatory — an
// allow without one is itself reported — and is surfaced by
// `unicolint -verbose` so every escape hatch stays documented.
package suppress

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Prefix is the directive marker. Like other Go tool directives
// (go:generate, lint:ignore) it is written with no space after "//".
const Prefix = "unicolint:allow"

// Allow is one parsed, well-formed suppression comment.
type Allow struct {
	Analyzer string
	Reason   string
	Pos      token.Pos // position of the comment
	File     string
	Line     int  // line the comment sits on
	Used     bool // set once a diagnostic was suppressed by this allow
}

// Malformed is a directive that failed to parse: a missing analyzer name, a
// missing reason, or an analyzer unicolint does not know about.
type Malformed struct {
	Pos     token.Pos
	Message string
}

// Index holds every allow in a set of files, keyed for O(1) lookup by
// (file, line, analyzer).
type Index struct {
	byKey  map[string]*Allow
	allows []*Allow
}

func key(file string, line int, analyzer string) string {
	return file + "\x00" + analyzer + "\x00" + itoa(line)
}

func itoa(n int) string {
	// strconv-free tiny itoa keeps the hot key path allocation-cheap.
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// BuildIndex scans the comments of files for allow directives. known is the
// set of valid analyzer names; a directive naming anything else is returned
// as malformed rather than silently ignored, so typos cannot disable
// enforcement.
func BuildIndex(fset *token.FileSet, files []*ast.File, known map[string]bool) (*Index, []Malformed) {
	ix := &Index{byKey: map[string]*Allow{}}
	var bad []Malformed
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				pos := fset.Position(c.Pos())
				switch {
				case len(fields) == 0:
					bad = append(bad, Malformed{c.Pos(),
						"malformed //unicolint:allow: missing analyzer name and reason"})
				case len(fields) == 1:
					bad = append(bad, Malformed{c.Pos(),
						"malformed //unicolint:allow " + fields[0] + ": a reason is mandatory"})
				case !known[fields[0]]:
					bad = append(bad, Malformed{c.Pos(),
						"//unicolint:allow names unknown analyzer " + quote(fields[0])})
				default:
					a := &Allow{
						Analyzer: fields[0],
						Reason:   strings.Join(fields[1:], " "),
						Pos:      c.Pos(),
						File:     pos.Filename,
						Line:     pos.Line,
					}
					ix.allows = append(ix.allows, a)
					// The allow covers its own line and the next one.
					ix.byKey[key(a.File, a.Line, a.Analyzer)] = a
					ix.byKey[key(a.File, a.Line+1, a.Analyzer)] = a
				}
			}
		}
	}
	return ix, bad
}

// directiveText returns the payload after the allow prefix, reporting
// whether the comment is an allow directive at all. Both the canonical
// "//unicolint:allow ..." and the spaced "// unicolint:allow ..." forms are
// accepted, so a gofmt-rewritten comment keeps working.
func directiveText(comment string) (string, bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false // block comments cannot carry directives
	}
	body = strings.TrimLeft(body, " \t")
	rest, ok := strings.CutPrefix(body, Prefix)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. "unicolint:allowance" is not the directive
	}
	return strings.TrimSpace(rest), true
}

func quote(s string) string { return `"` + s + `"` }

// Match returns the allow covering a diagnostic of analyzer at position
// (already resolved to file and line), or nil. A hit marks the allow used.
func (ix *Index) Match(file string, line int, analyzer string) *Allow {
	a := ix.byKey[key(file, line, analyzer)]
	if a != nil {
		a.Used = true
	}
	return a
}

// Allows returns every well-formed allow in the index, ordered by position.
func (ix *Index) Allows() []*Allow {
	out := append([]*Allow(nil), ix.allows...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// Unused returns the allows that never suppressed anything, ordered by
// position. These are surfaced by -verbose: a stale allow usually means the
// violation it excused was since fixed and the comment should go.
func (ix *Index) Unused() []*Allow {
	var out []*Allow
	for _, a := range ix.Allows() {
		if !a.Used {
			out = append(out, a)
		}
	}
	return out
}
