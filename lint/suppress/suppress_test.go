package suppress_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"unico/lint/suppress"
)

var known = map[string]bool{"detclock": true, "maporder": true}

func build(t *testing.T, src string) (*token.FileSet, *suppress.Index, []suppress.Malformed) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ix, bad := suppress.BuildIndex(fset, []*ast.File{f}, known)
	return fset, ix, bad
}

func TestWellFormedAllowCoversItsLineAndTheNext(t *testing.T) {
	_, ix, bad := build(t, `package p

func f() {
	//unicolint:allow detclock latency metric is wall time
	_ = 1 // line 5
	_ = 2 // line 6
}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	if a := ix.Match("fix.go", 4, "detclock"); a == nil {
		t.Error("allow does not cover its own line")
	}
	if a := ix.Match("fix.go", 5, "detclock"); a == nil {
		t.Error("allow does not cover the next line")
	} else if a.Reason != "latency metric is wall time" {
		t.Errorf("reason = %q", a.Reason)
	}
	if a := ix.Match("fix.go", 6, "detclock"); a != nil {
		t.Error("allow must not cover two lines below")
	}
	if a := ix.Match("fix.go", 5, "maporder"); a != nil {
		t.Error("allow must not cover a different analyzer")
	}
}

func TestSpacedFormAndTrailingPlacement(t *testing.T) {
	_, ix, bad := build(t, `package p

func f() {
	x := 1 // unicolint:allow maporder gofmt-spaced form still parses
	_ = x
}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	if ix.Match("fix.go", 4, "maporder") == nil {
		t.Error("trailing spaced-form allow not matched on its own line")
	}
}

func TestMissingReasonIsMalformed(t *testing.T) {
	_, ix, bad := build(t, `package p

//unicolint:allow detclock
func f() {}
`)
	if len(ix.Allows()) != 0 {
		t.Errorf("malformed allow must not be indexed: %v", ix.Allows())
	}
	if len(bad) != 1 {
		t.Fatalf("malformed = %d, want 1", len(bad))
	}
	if got := bad[0].Message; got != "malformed //unicolint:allow detclock: a reason is mandatory" {
		t.Errorf("message = %q", got)
	}
}

func TestMissingEverythingIsMalformed(t *testing.T) {
	_, _, bad := build(t, "package p\n\n//unicolint:allow\nfunc f() {}\n")
	if len(bad) != 1 || bad[0].Message != "malformed //unicolint:allow: missing analyzer name and reason" {
		t.Fatalf("bad = %v", bad)
	}
}

func TestUnknownAnalyzerIsMalformed(t *testing.T) {
	_, _, bad := build(t, "package p\n\n//unicolint:allow detclok typo in the analyzer name\nfunc f() {}\n")
	if len(bad) != 1 {
		t.Fatalf("malformed = %d, want 1", len(bad))
	}
	if want := `//unicolint:allow names unknown analyzer "detclok"`; bad[0].Message != want {
		t.Errorf("message = %q, want %q", bad[0].Message, want)
	}
}

func TestNonDirectiveCommentsIgnored(t *testing.T) {
	_, ix, bad := build(t, `package p

// unicolint:allowance is not the directive
// a comment mentioning unicolint:allow mid-sentence is ignored too? No:
// only comments *starting* with the marker parse. The next line does not.
// nothing to see: unicolint:allow detclock whatever
func f() {}
`)
	if len(bad) != 0 || len(ix.Allows()) != 0 {
		t.Errorf("non-directives parsed: allows=%v bad=%v", ix.Allows(), bad)
	}
}

func TestUsedAndUnusedTracking(t *testing.T) {
	_, ix, _ := build(t, `package p

func f() {
	//unicolint:allow detclock this one will be used
	_ = 1
	//unicolint:allow maporder this one is stale
	_ = 2
}
`)
	if ix.Match("fix.go", 5, "detclock") == nil {
		t.Fatal("expected match")
	}
	unused := ix.Unused()
	if len(unused) != 1 || unused[0].Analyzer != "maporder" {
		t.Fatalf("unused = %+v, want the single stale maporder allow", unused)
	}
	if got := len(ix.Allows()); got != 2 {
		t.Errorf("Allows() = %d, want 2", got)
	}
}
