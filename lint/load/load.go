// Package load builds type-checked syntax trees for Go packages using only
// the standard library.
//
// The upstream go/analysis ecosystem leans on golang.org/x/tools/go/packages
// to load code; unicolint cannot (the repo rule is stdlib only), so this
// package does the same job the portable way: `go list -deps -json`
// enumerates the package graph for the current configuration — the one
// ground truth for build constraints and vendoring — and everything, the
// standard library included, is then parsed and type-checked from source.
// That keeps the loader independent of compiler export data, which modern
// toolchains no longer ship pre-built. Loading this repository's full module
// graph (~220 packages with the stdlib closure) takes under two seconds.
//
// An overlay directory maps import paths to bare source directories so that
// analysistest fixtures under testdata/src can import fake sibling packages
// GOPATH-style, exactly like x/tools' analysistest.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File // parsed with comments; non-test files only
	FileNames  []string
	Types      *types.Package
	Info       *types.Info // populated for root and overlay packages only
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	DepOnly    bool
	Error      *struct{ Err string }
	overlay    bool
}

// Loader loads and memoizes packages. Not safe for concurrent use.
type Loader struct {
	Fset *token.FileSet

	// Overlay maps the root of a GOPATH-style source tree (testdata/src).
	// When set, import path P resolves to Overlay/P if that directory
	// exists, before the real module graph is consulted.
	Overlay string

	dir     string // directory go list runs in
	metas   map[string]*listPkg
	typed   map[string]*Package
	listing bool // true once the module-wide `go list -deps` ran
}

// New returns a Loader that resolves non-overlay imports via the Go module
// rooted at (or containing) dir.
func New(dir string) *Loader {
	return &Loader{
		Fset:  token.NewFileSet(),
		dir:   dir,
		metas: map[string]*listPkg{},
		typed: map[string]*Package{},
	}
}

// goList runs `go list -deps -json` for patterns and merges the results into
// the metadata table. CGO_ENABLED=0 keeps every package loadable from pure
// Go source; GOWORK=off pins resolution to the module itself.
func (l *Loader) goList(patterns ...string) error {
	args := append([]string{
		"list", "-e", "-deps",
		"-json=Dir,ImportPath,Name,GoFiles,Imports,ImportMap,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0", "GOWORK=off")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			return fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if _, ok := l.metas[p.ImportPath]; !ok {
			cp := p
			l.metas[p.ImportPath] = &cp
		}
	}
	return nil
}

// Roots loads the packages matched by patterns (default "./...") in the
// module under the loader's directory, returning them sorted by import path.
// Their full dependency closure is loaded and type-checked as a side effect.
func (l *Loader) Roots(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := l.goList(patterns...); err != nil {
		return nil, err
	}
	l.listing = true
	var roots []string
	for path, m := range l.metas {
		if !m.DepOnly && m.Name != "" {
			roots = append(roots, path)
		}
	}
	sort.Strings(roots)
	var out []*Package
	for _, path := range roots {
		p, err := l.load(path)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %v", path, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadOverlay loads one overlay package (an analysistest fixture) by import
// path, with full type information.
func (l *Loader) LoadOverlay(path string) (*Package, error) {
	return l.load(path)
}

// ensureMeta makes the metadata for import path available, consulting the
// overlay first and lazily go-listing real packages (the analysistest path,
// where no module-wide listing ran).
func (l *Loader) ensureMeta(path string) (*listPkg, error) {
	if m, ok := l.metas[path]; ok {
		return m, nil
	}
	if l.Overlay != "" {
		dir := filepath.Join(l.Overlay, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			ents, err := os.ReadDir(dir)
			if err != nil {
				return nil, err
			}
			m := &listPkg{Dir: dir, ImportPath: path, overlay: true}
			for _, e := range ents {
				name := e.Name()
				if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
					m.GoFiles = append(m.GoFiles, name)
				}
			}
			if len(m.GoFiles) == 0 {
				return nil, fmt.Errorf("overlay package %s has no Go files", path)
			}
			l.metas[path] = m
			return m, nil
		}
	}
	if l.listing {
		return nil, fmt.Errorf("package %q not in the module graph", path)
	}
	if err := l.goList(path); err != nil {
		return nil, err
	}
	if m, ok := l.metas[path]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("package %q not found", path)
}

// load parses and type-checks one package, memoized. Full types.Info is
// built for the packages that can be analyzed — module roots and overlay
// fixtures — and skipped for bare dependencies. The decision is made on
// first load from the package metadata: a package must never be
// type-checked twice, or its types lose identity with the instances its
// earlier importers captured.
func (l *Loader) load(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{ImportPath: path, Types: types.Unsafe}, nil
	}
	if p, ok := l.typed[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return p, nil
	}
	m, err := l.ensureMeta(path)
	if err != nil {
		return nil, err
	}
	withInfo := m.overlay || !m.DepOnly
	l.typed[path] = nil // cycle guard
	pkg := &Package{ImportPath: path, Dir: m.Dir}
	for _, name := range m.GoFiles {
		full := filepath.Join(m.Dir, name)
		af, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			delete(l.typed, path)
			return nil, err
		}
		pkg.Files = append(pkg.Files, af)
		pkg.FileNames = append(pkg.FileNames, full)
	}
	imp := importerFunc(func(ip string) (*types.Package, error) {
		if real, ok := m.ImportMap[ip]; ok {
			ip = real // vendored stdlib deps (e.g. net/http's http2)
		}
		dep, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		return dep.Types, nil
	})
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	if withInfo {
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
	}
	// Check returns an error when TypeErrors is non-empty; the partial
	// package is still usable, so errors are reported, not fatal.
	pkg.Types, _ = conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	l.typed[path] = pkg
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
