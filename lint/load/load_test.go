package load_test

import (
	"go/types"
	"testing"

	"unico/lint/load"
)

// Loading this module's own analysis package exercises the whole pipeline:
// go list metadata, recursive source type-checking of the stdlib closure,
// and Info construction for roots.
func TestRootsLoadsWithFullTypeInfo(t *testing.T) {
	l := load.New("..")
	pkgs, err := l.Roots("./analysis")
	if err != nil {
		t.Fatalf("Roots: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("packages = %d, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "unico/lint/analysis" {
		t.Errorf("ImportPath = %q", p.ImportPath)
	}
	if len(p.TypeErrors) != 0 {
		t.Errorf("type errors: %v", p.TypeErrors)
	}
	if p.Info == nil || p.Types == nil {
		t.Fatal("root package loaded without type info")
	}
	if len(p.Files) == 0 {
		t.Fatal("no files parsed")
	}
	// Type identity must hold across the load: the go/token package the
	// root imports is the same *types.Package instance everywhere.
	var tokenPkg *types.Package
	for _, imp := range p.Types.Imports() {
		if imp.Path() == "go/token" {
			tokenPkg = imp
		}
	}
	if tokenPkg == nil {
		t.Fatal("go/token not among imports")
	}
	again, err := l.Roots("./analysis")
	if err != nil {
		t.Fatalf("second Roots: %v", err)
	}
	if again[0].Types != p.Types {
		t.Error("reloading re-type-checked the package; identity lost")
	}
}

func TestOverlayShadowsNothingOutsideItsTree(t *testing.T) {
	l := load.New("..")
	l.Overlay = "no-such-dir"
	pkgs, err := l.Roots("./suppress")
	if err != nil {
		t.Fatalf("Roots with dangling overlay: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].TypeErrors) != 0 {
		t.Fatalf("unexpected result: %+v", pkgs)
	}
}
