package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"unico/lint/checkers"
	"unico/lint/driver"
	"unico/lint/load"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/json.golden from the current output")

// TestJSONOutputGolden pins the -json wire format byte for byte: editor
// integrations and CI annotation scripts parse it, so a field rename or
// reordering is a breaking change that must show up in review.
func TestJSONOutputGolden(t *testing.T) {
	dir := filepath.Join("testdata", "jsonmod")
	loader := load.New(dir)
	pkgs, err := loader.Roots("./...")
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Fatalf("fixture type error in %s: %v", p.ImportPath, e)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	res := driver.Run(loader.Fset, pkgs, checkers.All())
	for _, e := range res.Errors {
		t.Fatalf("driver error: %v", e)
	}

	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	rel := func(path string) string {
		if r, err := filepath.Rel(abs, path); err == nil {
			return filepath.ToSlash(r)
		}
		return path
	}

	var buf bytes.Buffer
	writeJSON(&buf, rel, res)

	golden := filepath.Join("testdata", "json.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// The same fixture carries exactly one stale allow — the condition the
	// -stale-allows flag turns into exit status 1.
	if len(res.Unused) != 1 {
		t.Errorf("fixture stale allows = %d, want 1 (the -stale-allows gate keys on this)", len(res.Unused))
	}
}
