// Package jsonmod is the fixture for the -json golden-file test: one live
// finding, one suppressed finding, and one stale allow, so every field of
// the wire format appears in the golden output.
package jsonmod

import "context"

func live() context.Context { return context.Background() }

func suppressed() context.Context {
	//unicolint:allow ctxflow golden-file fixture: exercising the suppressed=true wire shape
	return context.Background()
}

//unicolint:allow detclock golden-file fixture: exercising the stale wire shape
func clean() {}
