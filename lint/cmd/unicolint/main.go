// Command unicolint is the project's static-analysis gate. It loads a Go
// module from source (stdlib only — see unico/lint/load), runs the checkers
// that mechanize the repo's determinism, resilience and telemetry
// invariants, and fails with a per-diagnostic summary when any unsuppressed
// finding remains.
//
// Usage:
//
//	unicolint [-C dir] [-verbose] [-list] [-json] [-stale-allows] [patterns ...]
//
// Patterns default to ./... relative to -C (default "."). Exit status is 0
// when clean, 1 when diagnostics were found, 2 on operational errors.
//
// -json replaces the human-readable report with one JSON object per line —
// machine-readable for editor integrations and CI annotations — covering
// both live and suppressed findings:
//
//	{"path":"internal/dist/client.go","line":477,"col":14,"analyzer":"ctxflow","message":"...","suppressed":false}
//
// -stale-allows makes leftover //unicolint:allow directives that suppress
// nothing a failure (exit 1): a stale allow is a silenced analyzer waiting
// to miss a real regression at that site.
//
// A finding at a genuinely legitimate site is silenced in the source with
//
//	//unicolint:allow <analyzer> <reason>
//
// on, or directly above, the offending line. The reason is mandatory;
// -verbose lists every suppression in effect and every stale one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"unico/lint/analysis"
	"unico/lint/checkers"
	"unico/lint/driver"
	"unico/lint/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir         = flag.String("C", ".", "directory of the module to analyze")
		verbose     = flag.Bool("verbose", false, "also list suppressed diagnostics (with reasons) and stale allows")
		list        = flag.Bool("list", false, "list analyzers and the invariants they enforce, then exit")
		jsonOut     = flag.Bool("json", false, "emit one JSON finding object per line instead of the human-readable report")
		staleAllows = flag.Bool("stale-allows", false, "fail (exit 1) when any //unicolint:allow directive suppresses nothing")
	)
	flag.Parse()

	suite := checkers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	loader := load.New(*dir)
	pkgs, err := loader.Roots(flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unicolint: %v\n", err)
		return 2
	}
	var typeErrs int
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "unicolint: type error in %s: %v\n", p.ImportPath, e)
			typeErrs++
		}
	}
	if typeErrs > 0 {
		fmt.Fprintf(os.Stderr, "unicolint: %d type errors; analysis needs a compiling package set\n", typeErrs)
		return 2
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })

	res := driver.Run(loader.Fset, pkgs, suite)
	for _, e := range res.Errors {
		fmt.Fprintf(os.Stderr, "unicolint: %v\n", e)
	}
	if len(res.Errors) > 0 {
		return 2
	}

	base, err := filepath.Abs(*dir)
	if err != nil {
		base = *dir
	}
	rel := func(path string) string {
		if r, err := filepath.Rel(base, path); err == nil && !filepath.IsAbs(r) && r != "" && r[0] != '.' {
			return r
		}
		return path
	}

	if *jsonOut {
		writeJSON(os.Stdout, rel, res)
	} else {
		for _, d := range res.Diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", rel(d.Position.Filename), d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
		}
		if *verbose {
			for _, s := range res.Suppressed {
				fmt.Printf("%s:%d: suppressed %s: %s (allowed: %s)\n",
					rel(s.Diag.Position.Filename), s.Diag.Position.Line, s.Diag.Analyzer, s.Diag.Message, s.Reason)
			}
		}
	}
	if (*verbose || *staleAllows) && !*jsonOut {
		for _, a := range res.Unused {
			fmt.Printf("%s:%d: stale //unicolint:allow %s (%s): suppressed nothing; remove it\n",
				rel(a.File), a.Line, a.Analyzer, a.Reason)
		}
	}

	summary(pkgs, suite, res)
	if len(res.Diags) > 0 {
		return 1
	}
	if *staleAllows && len(res.Unused) > 0 {
		fmt.Fprintf(os.Stderr, "unicolint: %d stale allow directives (-stale-allows)\n", len(res.Unused))
		return 1
	}
	return 0
}

// finding is the -json wire format: one object per line, stable field
// order, findings sorted by (path, line, col, analyzer) with suppressed
// findings after live ones at the same position.
type finding struct {
	Path       string `json:"path"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	// Reason is the allow text for suppressed findings, omitted otherwise.
	Reason string `json:"reason,omitempty"`
	// Stale marks an allow directive that suppressed nothing; line/col point
	// at the directive and message explains the removal.
	Stale bool `json:"stale,omitempty"`
}

func writeJSON(w io.Writer, rel func(string) string, res driver.Result) {
	findings := make([]finding, 0, len(res.Diags)+len(res.Suppressed)+len(res.Unused))
	for _, d := range res.Diags {
		findings = append(findings, finding{
			Path: rel(d.Position.Filename), Line: d.Position.Line, Col: d.Position.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	for _, s := range res.Suppressed {
		findings = append(findings, finding{
			Path: rel(s.Diag.Position.Filename), Line: s.Diag.Position.Line, Col: s.Diag.Position.Column,
			Analyzer: s.Diag.Analyzer, Message: s.Diag.Message,
			Suppressed: true, Reason: s.Reason,
		})
	}
	for _, a := range res.Unused {
		findings = append(findings, finding{
			Path: rel(a.File), Line: a.Line,
			Analyzer: a.Analyzer,
			Message:  "stale //unicolint:allow " + a.Analyzer + ": suppressed nothing; remove it",
			Stale:    true, Reason: a.Reason,
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Suppressed != b.Suppressed {
			return !a.Suppressed
		}
		return a.Analyzer < b.Analyzer
	})
	enc := json.NewEncoder(w)
	for _, f := range findings {
		// Encode never fails for this shape; a write error surfaces on the
		// next line or at process exit.
		_ = enc.Encode(f)
	}
}

func summary(pkgs []*load.Package, suite []*analysis.Analyzer, res driver.Result) {
	perAnalyzer := map[string]int{}
	for _, d := range res.Diags {
		perAnalyzer[d.Analyzer]++
	}
	if len(res.Diags) == 0 {
		fmt.Fprintf(os.Stderr, "unicolint: ok — %d packages, %d analyzers, %d suppressed\n",
			len(pkgs), len(suite), len(res.Suppressed))
		return
	}
	fmt.Fprintf(os.Stderr, "unicolint: %d diagnostics in %d packages (%d suppressed):",
		len(res.Diags), len(pkgs), len(res.Suppressed))
	names := make([]string, 0, len(perAnalyzer))
	for n := range perAnalyzer {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, " %s=%d", n, perAnalyzer[n])
	}
	fmt.Fprintln(os.Stderr)
}
