// Package analysistest runs one analyzer over fixture packages under
// testdata/src and compares its diagnostics against `// want` expectations,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Expectation syntax: a comment of the form
//
//	// want `regexp` `regexp` ...
//
// (double-quoted strings also work) attaches one or more expected
// diagnostics to its line. Every reported diagnostic must match exactly one
// pending expectation on its line, and every expectation must be consumed.
// Suppression semantics are live — diagnostics silenced by a
// //unicolint:allow comment never reach the matcher, so fixtures can prove
// an allow works by carrying no want on the allowed line.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"sync"
	"testing"

	"unico/lint/analysis"
	"unico/lint/driver"
	"unico/lint/load"
)

// loaders caches one loader per overlay directory so the stdlib closure
// (net/http alone pulls in ~100 packages) is type-checked once per test
// binary, not once per test.
var (
	loadersMu sync.Mutex
	loaders   = map[string]*load.Loader{}
)

func loaderFor(overlay string) *load.Loader {
	loadersMu.Lock()
	defer loadersMu.Unlock()
	l := loaders[overlay]
	if l == nil {
		l = load.New(".")
		l.Overlay = overlay
		loaders[overlay] = l
	}
	return l
}

// Run loads each fixture package (an import path under testdata/src) and
// checks analyzer a against the fixtures' want comments. Packages are
// processed in order through one driver run, so analyzers with
// cross-package state (metricname) see them the way the real driver would.
func Run(t *testing.T, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	RunWithSuite(t, []*analysis.Analyzer{a}, pkgpaths...)
}

// RunWithSuite is Run for several analyzers sharing one pass, for fixtures
// that exercise interactions (for example suppression of one analyzer but
// not another).
func RunWithSuite(t *testing.T, analyzers []*analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := loaderFor("testdata/src")

	loadersMu.Lock()
	var pkgs []*load.Package
	for _, path := range pkgpaths {
		pkg, err := l.LoadOverlay(path)
		if err != nil {
			loadersMu.Unlock()
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		if len(pkg.TypeErrors) > 0 {
			loadersMu.Unlock()
			t.Fatalf("fixture %s has type errors: %v", path, pkg.TypeErrors)
		}
		pkgs = append(pkgs, pkg)
	}
	res := driver.Run(l.Fset, pkgs, analyzers)
	loadersMu.Unlock()

	for _, err := range res.Errors {
		t.Errorf("analyzer error: %v", err)
	}

	wants := collectWants(t, l.Fset, pkgs)
	for _, d := range res.Diags {
		key := fmt.Sprintf("%s:%d", d.Position.Filename, d.Position.Line)
		if !consumeWant(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", key, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re.String())
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func consumeWant(ws []*want, message string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses `// want` comments out of the fixture files.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*load.Package) map[string][]*want {
	t.Helper()
	out := map[string][]*want{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := wantPayload(c.Text)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					pats, err := parsePatterns(rest)
					if err != nil {
						t.Fatalf("%s: bad want comment: %v", key, err)
					}
					for _, p := range pats {
						re, err := regexp.Compile(p)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, p, err)
						}
						out[key] = append(out[key], &want{re: re})
					}
				}
			}
		}
	}
	return out
}

// wantPayload extracts the expectation text from a comment: either the
// whole comment is "// want ..." or a want clause is embedded after a
// directive ("//unicolint:allow x y // want ..."), which lets a fixture
// attach an expectation to the directive's own line.
func wantPayload(comment string) (string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if rest, ok := strings.CutPrefix(text, "want "); ok {
		return rest, true
	}
	if i := strings.Index(comment, "// want "); i >= 0 {
		return comment[i+len("// want "):], true
	}
	return "", false
}

// parsePatterns splits a want payload into its quoted or backquoted
// patterns.
func parsePatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted pattern, found %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[2+end:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}
