module unico/lint

go 1.22
