// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface that unicolint's checkers are
// written against.
//
// The repo rule is "no modules beyond the standard library", which rules out
// depending on x/tools itself, so this package mirrors the shape of its API
// (Analyzer, Pass, Diagnostic) closely enough that a checker reads exactly
// like an upstream go/analysis analyzer and could be ported to one
// mechanically if the dependency rule ever changes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //unicolint:allow suppression comments.
	Name string

	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces, shown by `unicolint -list`.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer. Mirrors analysis.Pass.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Path      string // import path of the package under analysis
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Installed by the driver; never nil.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// ReportNoSuppress reports a diagnostic that a //unicolint:allow comment
// cannot silence. Used for policy violations about the suppression mechanism
// itself (for example an allow comment inside a strict-determinism package),
// which would otherwise be self-suppressing.
func (p *Pass) ReportNoSuppress(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...), NoSuppress: true})
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string

	// NoSuppress marks a diagnostic immune to //unicolint:allow comments.
	NoSuppress bool
}

// TypeOf returns the type of expression e, or nil if type information is
// incomplete. Checkers must tolerate nil: the loader type-checks from source
// and degrades rather than aborts on exotic build configurations.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by identifier id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.TypesInfo == nil {
		return nil
	}
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}
